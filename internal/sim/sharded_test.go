package sim

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// splitmix64 is the test-local deterministic stream; each PHOLD group owns
// one state word, so handlers touch only group-owned state.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// phold is the classic PHOLD-style conforming-parallel workload: every event
// folds its (time, group, payload) into a per-group digest and schedules one
// successor — usually within its own group, sometimes into a random remote
// group at lookahead distance. It is the canonical way to exercise the
// sharded machinery: heavy event churn, real cross-shard traffic, and state
// that is strictly group-owned.
type phold struct {
	rng     []uint64
	digest  []uint64
	groups  int
	horizon Time
}

func newPHOLD(groups int, horizon Time) *phold {
	p := &phold{rng: make([]uint64, groups), digest: make([]uint64, groups), groups: groups, horizon: horizon}
	for g := range p.rng {
		p.rng[g] = uint64(g)*0x9e3779b97f4a7c15 + 1
	}
	return p
}

// seedInto schedules one initial event per group.
func (p *phold) seedInto(s *Sharded) {
	for g := 0; g < p.groups; g++ {
		s.ScheduleLocal(int32(g), Time(1+g%7), p, int64(g), 0)
	}
}

func (p *phold) HandleLocalEvent(sc *ShardContext, a, b int64) {
	g := sc.Group()
	x := splitmix64(&p.rng[g])
	p.digest[g] = p.digest[g]*0x100000001b3 ^ uint64(sc.Now()) ^ uint64(a)<<17 ^ x
	if sc.Now() >= p.horizon {
		return
	}
	delta := Time(1 + x%97)
	if x%5 == 0 && p.groups > 1 {
		dst := int32((x >> 8) % uint64(p.groups))
		if dst == g {
			dst = (dst + 1) % int32(p.groups)
		}
		sc.Schedule(dst, sc.Now()+sc.Lookahead()+delta, p, a+1, int64(g))
		return
	}
	sc.After(delta, p, a+1, 0)
}

// fingerprint condenses the per-group digests into one comparable word.
func (p *phold) fingerprint() uint64 {
	var f uint64
	for _, d := range p.digest {
		f = f*0x100000001b3 ^ d
	}
	return f
}

// runPHOLD executes the workload on a fresh engine with the given shard
// count and returns (fingerprint, executed events, final clock).
func runPHOLD(t *testing.T, groups, shards int, lookahead, horizon Time, drive func(*Engine)) (uint64, uint64, Time, *Sharded) {
	t.Helper()
	e := NewEngine(7)
	s, err := NewSharded(e, groups, shards, lookahead)
	if err != nil {
		t.Fatal(err)
	}
	p := newPHOLD(groups, horizon)
	p.seedInto(s)
	drive(e)
	return p.fingerprint(), e.ExecutedEvents(), e.Now(), s
}

func runDrive(e *Engine) {
	if err := e.Run(); err != nil {
		panic(err)
	}
}

// TestShardedByteIdenticalAcrossShardCounts is the core determinism
// regression at the engine level: a conforming-parallel workload produces
// the same digest, event count and final clock at every shard count.
func TestShardedByteIdenticalAcrossShardCounts(t *testing.T) {
	const groups, lookahead, horizon = 8, 600, 40_000
	baseFP, baseN, baseNow, _ := runPHOLD(t, groups, 1, lookahead, horizon, runDrive)
	if baseN == 0 {
		t.Fatal("workload executed no events")
	}
	for _, shards := range []int{2, 3, 4, 8} {
		fp, n, now, s := runPHOLD(t, groups, shards, lookahead, horizon, runDrive)
		if fp != baseFP || n != baseN || now != baseNow {
			t.Fatalf("shards=%d diverges: fp %#x/%#x events %d/%d now %d/%d",
				shards, fp, baseFP, n, baseN, now, baseNow)
		}
		if w, pw := s.Windows(); w == 0 || (shards > 1 && pw == 0) {
			t.Fatalf("shards=%d: %d windows, %d parallel — expected real windowed execution", shards, w, pw)
		}
		if shards > 1 && s.CrossPosts() == 0 {
			t.Fatalf("shards=%d: no cross-shard mailbox traffic", shards)
		}
	}
}

// TestShardedStepMatchesRun pins drive-mode independence: stepping one event
// at a time (the cooperative MPI scheduler's mode) is byte-identical to the
// windowed Run loop, because local event keys are batching-independent.
func TestShardedStepMatchesRun(t *testing.T) {
	const groups, lookahead, horizon = 6, 500, 20_000
	runFP, runN, runNow, _ := runPHOLD(t, groups, 4, lookahead, horizon, runDrive)
	stepFP, stepN, stepNow, _ := runPHOLD(t, groups, 4, lookahead, horizon, func(e *Engine) {
		for {
			ok, err := e.Step()
			if err != nil {
				panic(err)
			}
			if !ok {
				return
			}
		}
	})
	if runFP != stepFP || runN != stepN || runNow != stepNow {
		t.Fatalf("Step drive diverges from Run: fp %#x/%#x events %d/%d now %d/%d",
			stepFP, runFP, stepN, runN, stepNow, runNow)
	}
}

// TestShardedRunUntilBatchingIndependent pins that chopping a run into
// arbitrary RunUntil segments (which truncates horizon windows at each
// deadline) cannot change the outcome.
func TestShardedRunUntilBatchingIndependent(t *testing.T) {
	const groups, lookahead, horizon = 6, 500, 20_000
	runFP, runN, _, _ := runPHOLD(t, groups, 4, lookahead, horizon, runDrive)
	segFP, segN, _, _ := runPHOLD(t, groups, 4, lookahead, horizon, func(e *Engine) {
		for d := Time(777); e.Pending() > 0; d += 777 {
			if err := e.RunUntil(d); err != nil {
				panic(err)
			}
		}
	})
	if runFP != segFP || runN != segN {
		t.Fatalf("RunUntil segments diverge from Run: fp %#x/%#x events %d/%d", segFP, runFP, segN, runN)
	}
}

// traceRec records an execution trace of serial-domain events; used to prove
// resident events execute exactly where the plain engine would put them.
type traceRec struct {
	hash uint64
	n    int
	res  *Sharded // when non-nil, reschedule through the resident API
	e    *Engine
}

func (r *traceRec) HandleEvent(e *Engine, a, b int64) {
	r.hash = r.hash*0x100000001b3 ^ uint64(e.Now()) ^ uint64(a)<<13 ^ uint64(b)<<29
	r.n++
	// Every third event reschedules a follow-up, mimicking a packet hop
	// chain crossing groups.
	if r.n%3 == 0 && b < 4 {
		g := (a + b) % 4
		if r.res != nil {
			r.res.ScheduleResident(int32(g), e.Now()+5+a%11, r, a+100, b+1)
		} else {
			r.e.ScheduleCall(e.Now()+5+a%11, r, a+100, b+1)
		}
	}
}

// TestResidentOrderMatchesSerialEngine proves the resident class preserves
// the plain engine's total order: the same logical schedule — some events on
// the engine heap, some filed under owning groups, follow-ups chaining
// across groups — produces an identical execution trace to an unsharded
// engine given everything through ScheduleCall.
func TestResidentOrderMatchesSerialEngine(t *testing.T) {
	serialTrace := func() (uint64, int) {
		e := NewEngine(3)
		r := &traceRec{e: e}
		rng := uint64(42)
		for i := 0; i < 200; i++ {
			x := splitmix64(&rng)
			e.ScheduleCall(Time(x%500), r, int64(i), int64(x%3))
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return r.hash, r.n
	}
	wantHash, wantN := serialTrace()

	for _, shards := range []int{1, 2, 4} {
		e := NewEngine(3)
		s, err := NewSharded(e, 4, shards, 100)
		if err != nil {
			t.Fatal(err)
		}
		r := &traceRec{e: e, res: s}
		rng := uint64(42)
		for i := 0; i < 200; i++ {
			x := splitmix64(&rng)
			// Alternate between the engine heap and group residency; the
			// (at, seq) key is identical either way, so the trace must be too.
			if i%2 == 0 {
				e.ScheduleCall(Time(x%500), r, int64(i), int64(x%3))
			} else {
				s.ScheduleResident(int32(i%4), Time(x%500), r, int64(i), int64(x%3))
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if r.hash != wantHash || r.n != wantN {
			t.Fatalf("shards=%d resident trace diverges from serial engine: hash %#x/%#x n %d/%d",
				shards, r.hash, wantHash, r.n, wantN)
		}
	}
}

// orderProbe records, per destination group, the canonical key of every
// event it executes. Group logs are group-owned, so recording is race-free
// under parallel windows.
type orderProbe struct {
	perGroup [][][3]int64 // group -> sequence of (at, src, seq)
}

func (o *orderProbe) HandleLocalEvent(sc *ShardContext, a, b int64) {
	g := sc.Group()
	o.perGroup[g] = append(o.perGroup[g], [3]int64{sc.Now(), a, b})
}

// TestCrossShardMergeCanonicalOrder is the satellite property test:
// randomized cross-shard interleavings — random times, random source and
// destination groups, scheduled in random order — always merge so each
// group observes its events in canonical (time, source group, source seq)
// order, and the per-group sequences are identical at every shard count.
func TestCrossShardMergeCanonicalOrder(t *testing.T) {
	const groups = 7
	for trial := 0; trial < 30; trial++ {
		rng := uint64(1000 + trial)
		type spec struct {
			at       Time
			src, dst int32
		}
		specs := make([]spec, 400)
		for i := range specs {
			x := splitmix64(&rng)
			specs[i] = spec{at: Time(x % 64), src: int32(x >> 8 % groups), dst: int32(x >> 16 % groups)}
		}
		var base [][][3]int64
		for _, shards := range []int{1, 2, 4, 7} {
			e := NewEngine(1)
			s, err := NewSharded(e, groups, shards, 16)
			if err != nil {
				t.Fatal(err)
			}
			probe := &orderProbe{perGroup: make([][][3]int64, groups)}
			// One seeder event per source group posts that group's specs
			// from inside the run, so cross-group schedules genuinely
			// traverse the mailboxes (times offset past the lookahead
			// bound). Each post carries (source group, per-source index) —
			// the canonical tiebreak components.
			seeder := localFunc(func(sc *ShardContext, a, b int64) {
				src := sc.Group()
				idx := int64(0)
				for _, sp := range specs {
					if sp.src != src {
						continue
					}
					sc.Schedule(sp.dst, sc.Now()+sc.Lookahead()+sp.at, probe, int64(src), idx)
					idx++
				}
			})
			for g := int32(0); g < groups; g++ {
				s.ScheduleLocal(g, 10, seeder, 0, 0)
			}
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			// Canonical order within each group: (time, source group,
			// per-source sequence).
			for g := range probe.perGroup {
				log := probe.perGroup[g]
				for i := 1; i < len(log); i++ {
					a, b := log[i-1], log[i]
					if a[0] > b[0] || (a[0] == b[0] && (a[1] > b[1] || (a[1] == b[1] && a[2] > b[2]))) {
						t.Fatalf("trial %d shards=%d group %d: canonical order violated: %v before %v", trial, shards, g, a, b)
					}
				}
			}
			if base == nil {
				base = probe.perGroup
				continue
			}
			for g := range probe.perGroup {
				if len(base[g]) != len(probe.perGroup[g]) {
					t.Fatalf("trial %d shards=%d group %d: %d events vs %d at shards=1",
						trial, shards, g, len(probe.perGroup[g]), len(base[g]))
				}
				for i := range base[g] {
					if base[g][i] != probe.perGroup[g][i] {
						t.Fatalf("trial %d shards=%d group %d event %d: %v vs %v at shards=1",
							trial, shards, g, i, probe.perGroup[g][i], base[g][i])
					}
				}
			}
		}
	}
}

// serialLog records serial-domain executions (barrier actions and
// deferred-serial events) in arrival order. It only ever runs on the
// coordinator goroutine, so appending is race-free by construction.
type serialLog struct {
	log [][3]int64
}

func (l *serialLog) HandleEvent(e *Engine, a, b int64) {
	l.log = append(l.log, [3]int64{int64(e.Now()), a, b})
}

// TestPromotedClassesMergeInvariance extends the canonical-merge property to
// the promoted event classes this engine grew for the near-empty serial
// domain: conforming-parallel events that Defer barrier actions (the
// promoted rank-wakeup / delivery-completion shape) and ones that post
// deferred-serial events (ScheduleSerial). Random interleavings — random
// times, random source and destination groups — must produce one identical
// serial-side execution log at every shard count in {1, 2, 4, 7} and under
// both drive modes (windowed Run and stepped), including the engine clock
// each action observed.
func TestPromotedClassesMergeInvariance(t *testing.T) {
	const groups = 7
	drives := map[string]func(*Engine){
		"run": runDrive,
		"step": func(e *Engine) {
			for {
				ok, err := e.Step()
				if err != nil {
					panic(err)
				}
				if !ok {
					return
				}
			}
		},
	}
	for trial := 0; trial < 10; trial++ {
		rng := uint64(7700 + trial)
		type spec struct {
			at       Time
			src, dst int32
			kind     uint64 // 0,1: Defer only; 2: Defer + ScheduleSerial
		}
		specs := make([]spec, 300)
		for i := range specs {
			x := splitmix64(&rng)
			specs[i] = spec{at: Time(x % 64), src: int32(x >> 8 % groups),
				dst: int32(x >> 16 % groups), kind: x >> 32 % 3}
		}
		var base [][3]int64
		var baseCfg string
		for _, shards := range []int{1, 2, 4, 7} {
			for name, drive := range drives {
				e := NewEngine(1)
				s, err := NewSharded(e, groups, shards, 16)
				if err != nil {
					t.Fatal(err)
				}
				log := &serialLog{}
				probe := localFunc(func(sc *ShardContext, a, b int64) {
					sc.Defer(log, a, b)
					if specs[b].kind == 2 {
						sc.ScheduleSerial(sc.Now()+3, log, a, ^b)
					}
				})
				seeder := localFunc(func(sc *ShardContext, a, b int64) {
					src := sc.Group()
					for i, sp := range specs {
						if sp.src != src {
							continue
						}
						sc.Schedule(sp.dst, sc.Now()+sc.Lookahead()+sp.at, probe, int64(src), int64(i))
					}
				})
				for g := int32(0); g < groups; g++ {
					s.ScheduleLocal(g, 10, seeder, 0, 0)
				}
				drive(e)
				cfg := fmt.Sprintf("shards=%d drive=%s", shards, name)
				if base == nil {
					base, baseCfg = log.log, cfg
					if len(base) == 0 {
						t.Fatalf("trial %d %s: empty serial log", trial, cfg)
					}
					continue
				}
				if len(log.log) != len(base) {
					t.Fatalf("trial %d %s: %d serial actions vs %d under %s",
						trial, cfg, len(log.log), len(base), baseCfg)
				}
				for i := range base {
					if log.log[i] != base[i] {
						t.Fatalf("trial %d %s action %d: %v vs %v under %s",
							trial, cfg, i, log.log[i], base[i], baseCfg)
					}
				}
			}
		}
	}
}

// localFunc adapts a function to LocalHandler.
type localFunc func(sc *ShardContext, a, b int64)

func (f localFunc) HandleLocalEvent(sc *ShardContext, a, b int64) { f(sc, a, b) }

// TestShardedResetRerunsIdentically pins the Reset contract: after
// Engine.Reset the sharded system reruns the same workload byte-identically.
func TestShardedResetRerunsIdentically(t *testing.T) {
	e := NewEngine(9)
	s, err := NewSharded(e, 6, 3, 400)
	if err != nil {
		t.Fatal(err)
	}
	run := func() uint64 {
		p := newPHOLD(6, 10_000)
		p.seedInto(s)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return p.fingerprint()
	}
	first := run()
	e.Reset(9)
	if e.Pending() != 0 {
		t.Fatalf("reset left %d events pending", e.Pending())
	}
	if again := run(); again != first {
		t.Fatalf("rerun after Reset diverges: %#x vs %#x", again, first)
	}
}

// TestShardedLookaheadViolationPanics pins the conservative contract: a
// cross-group event closer than the lookahead bound panics deterministically
// instead of corrupting the run.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	e := NewEngine(1)
	s, err := NewSharded(e, 4, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	bad := localFunc(func(sc *ShardContext, a, b int64) {
		sc.Schedule((sc.Group()+1)%4, sc.Now()+10, localFunc(func(*ShardContext, int64, int64) {}), 0, 0)
	})
	s.ScheduleLocal(0, 5, bad, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead violation did not panic")
		}
	}()
	_ = e.Run()
}

// TestEngineScheduleFromWindowPanics pins the domain separation: the serial
// engine API is off-limits inside a conforming-parallel handler, on both the
// windowed and the stepped path.
func TestEngineScheduleFromWindowPanics(t *testing.T) {
	for _, stepped := range []bool{false, true} {
		e := NewEngine(1)
		s, err := NewSharded(e, 2, 2, 50)
		if err != nil {
			t.Fatal(err)
		}
		bad := localFunc(func(sc *ShardContext, a, b int64) {
			e.Schedule(sc.Now()+1, func() {})
		})
		s.ScheduleLocal(0, 1, bad, 0, 0)
		panicked := func() (p bool) {
			defer func() { p = recover() != nil }()
			if stepped {
				_, _ = e.Step()
			} else {
				_ = e.Run()
			}
			return false
		}()
		if !panicked {
			t.Fatalf("engine scheduling from a local handler did not panic (stepped=%v)", stepped)
		}
	}
}

// waitGoroutines polls until the goroutine count settles back to base.
func waitGoroutines(t *testing.T, base int, context string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("%s: goroutines leaked: %d now vs %d at start", context, runtime.NumGoroutine(), base)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestShardedWorkersDoNotLeak pins the worker-pool lifecycle: the pool's
// pinned goroutines persist across windows within a run, but a completed run
// (drive loop natural completion) and a panicked run (re-raise at the
// barrier) both tear the pool down, so the goroutine count settles back to
// the baseline.
func TestShardedWorkersDoNotLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	_, _, _, _ = runPHOLD(t, 8, 8, 600, 30_000, runDrive)
	waitGoroutines(t, base, "completed run")

	// And the panic path: a worker blowing up mid-window must not strand its
	// siblings or the parked pool.
	e := NewEngine(2)
	s, err := NewSharded(e, 4, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	for g := int32(0); g < 4; g++ {
		g := g
		s.ScheduleLocal(g, 1, localFunc(func(sc *ShardContext, a, b int64) {
			if g == 2 {
				panic("boom")
			}
		}), 0, 0)
	}
	func() {
		defer func() { recover() }()
		_ = e.Run()
	}()
	waitGoroutines(t, base, "panicked run")
}

// TestShardedPoolPersistsAcrossWindows pins the tentpole perf property: one
// run spawns the worker pool exactly once, however many parallel windows it
// executes — no per-window goroutine churn.
func TestShardedPoolPersistsAcrossWindows(t *testing.T) {
	e := NewEngine(7)
	s, err := NewSharded(e, 8, 4, 600)
	if err != nil {
		t.Fatal(err)
	}
	p := newPHOLD(8, 40_000)
	p.seedInto(s)
	// The probe samples the process goroutine count mid-window. It is
	// scheduled into a single group so exactly one worker goroutine ever
	// touches peak — the count itself still sees every shard's worker.
	peak := 0
	probe := localFunc(func(sc *ShardContext, a, b int64) {
		if n := runtime.NumGoroutine(); n > peak {
			peak = n
		}
	})
	for _, at := range []Time{100, 10_000, 20_000, 30_000} {
		s.ScheduleLocal(0, at, probe, 0, 0)
	}
	base := runtime.NumGoroutine()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, pw := s.Windows(); pw < 10 {
		t.Fatalf("expected many parallel windows, got %d", pw)
	}
	// The pool is one goroutine per shard; anything above base+shards would
	// mean windows spawned extra goroutines on top of the pool.
	if peak > base+s.Shards() {
		t.Fatalf("goroutine peak %d exceeds base %d + %d pool workers", peak, base, s.Shards())
	}
	waitGoroutines(t, base, "after run")
}

// TestShardedResetReapsWorkers pins the Reset teardown path: a run abandoned
// mid-flight (RunUntil deadline) leaves the pool parked; Engine.Reset must
// reap it.
func TestShardedResetReapsWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	e := NewEngine(5)
	s, err := NewSharded(e, 8, 4, 600)
	if err != nil {
		t.Fatal(err)
	}
	p := newPHOLD(8, 1<<40) // unbounded: the deadline cuts the run mid-flight
	p.seedInto(s)
	if err := e.RunUntil(20_000); err != nil {
		t.Fatal(err)
	}
	if e.Pending() == 0 {
		t.Fatal("expected a mid-flight run with pending events")
	}
	e.Reset(5)
	waitGoroutines(t, base, "after Reset")
}

// TestShardedShutdownIdempotent pins that Shutdown is safe to call at any
// point: before any window ran, twice in a row, and between runs (the next
// window lazily respawns the pool).
func TestShardedShutdownIdempotent(t *testing.T) {
	base := runtime.NumGoroutine()
	e := NewEngine(3)
	s, err := NewSharded(e, 6, 3, 500)
	if err != nil {
		t.Fatal(err)
	}
	s.Shutdown() // no pool yet: must be a no-op
	p := newPHOLD(6, 10_000)
	p.seedInto(s)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	first := p.fingerprint()
	s.Shutdown() // run completion already tore the pool down
	s.Shutdown()
	waitGoroutines(t, base, "after explicit Shutdown")

	// A second run on the same driver respawns the pool lazily and produces
	// the same bytes.
	e.Reset(3)
	q := newPHOLD(6, 10_000)
	q.seedInto(s)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if q.fingerprint() != first {
		t.Fatalf("rerun after Shutdown diverges: %#x vs %#x", q.fingerprint(), first)
	}
	waitGoroutines(t, base, "after rerun")
}

// TestShardedEventLimitStops pins that the safety cap also binds windowed
// execution (checked at every barrier).
func TestShardedEventLimitStops(t *testing.T) {
	e := NewEngine(3)
	s, err := NewSharded(e, 4, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	p := newPHOLD(4, 1<<40) // effectively unbounded workload
	p.seedInto(s)
	e.SetEventLimit(10_000)
	if err := e.Run(); err == nil {
		t.Fatal("event limit did not stop the run")
	}
}

// TestNewShardedValidation pins constructor errors and clamping.
func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(nil, 4, 2, 100); err == nil {
		t.Fatal("nil engine accepted")
	}
	e := NewEngine(1)
	if _, err := NewSharded(e, 0, 2, 100); err == nil {
		t.Fatal("zero groups accepted")
	}
	if _, err := NewSharded(e, 4, 2, 0); err == nil {
		t.Fatal("zero lookahead accepted")
	}
	s, err := NewSharded(e, 4, 99, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 4 {
		t.Fatalf("shards not clamped to groups: %d", s.Shards())
	}
	if _, err := NewSharded(e, 4, 2, 100); err == nil {
		t.Fatal("double attach accepted")
	}
	// Contiguous block partition covers all groups in order.
	prev := 0
	for g := 0; g < 4; g++ {
		sh := s.ShardOf(g)
		if sh < prev || sh >= s.Shards() {
			t.Fatalf("non-contiguous shard map: group %d -> shard %d after %d", g, sh, prev)
		}
		prev = sh
	}
}

// TestShardedParallelWindowsActuallyOverlap sanity-checks that the windowed
// path runs shards on distinct goroutines (two workers observed inside one
// window). It is a smoke test for parallel execution, not a timing assert —
// on a single-core runner the goroutines still interleave.
func TestShardedParallelWindowsActuallyOverlap(t *testing.T) {
	e := NewEngine(4)
	s, err := NewSharded(e, 2, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[int]bool{}
	h := localFunc(func(sc *ShardContext, a, b int64) {
		mu.Lock()
		seen[sc.Shard()] = true
		mu.Unlock()
	})
	for g := int32(0); g < 2; g++ {
		s.ScheduleLocal(g, 10, h, 0, 0)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("expected both shards to execute, saw %v", seen)
	}
	if _, pw := s.Windows(); pw != 1 {
		t.Fatalf("expected exactly one parallel window, got %d", pw)
	}
}

// BenchmarkShardedWindowSteadyState measures the steady-state cost of the
// windowed drive loop on a warmed engine: the worker pool is already
// spawned, every heap, mailbox and context arena is at capacity, and each
// benchmark op advances an endless PHOLD workload by one RunUntil segment
// spanning many horizon windows. allocs/op is the headline and must be 0 —
// the persistent pool exists precisely so that steady-state windows cost no
// goroutine churn and no allocations; scripts/bench_smoke.sh gates on it
// (window_allocs_per_op in BENCH_budget.txt).
func BenchmarkShardedWindowSteadyState(b *testing.B) {
	const segment = Time(10_000)
	e := NewEngine(7)
	s, err := NewSharded(e, 8, 4, 600)
	if err != nil {
		b.Fatal(err)
	}
	p := newPHOLD(8, 1<<40) // endless: the deadline bounds each op
	p.seedInto(s)
	// Warm-up: spawn the pool and grow every arena to steady-state capacity.
	deadline := Time(200_000)
	if err := e.RunUntil(deadline); err != nil {
		b.Fatal(err)
	}
	w0, _ := s.Windows()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deadline += segment
		if err := e.RunUntil(deadline); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	w1, _ := s.Windows()
	b.ReportMetric(float64(w1-w0)/float64(b.N), "windows/op")
	s.Shutdown()
}

// BenchmarkPHOLDSharded measures the sharded engine on the conforming PHOLD
// workload at several shard counts. On a multi-core runner the window
// workers overlap; the committed numbers from the 1-core CI runner measure
// coordination overhead instead (see EXPERIMENTS.md "Intra-run
// parallelism").
func BenchmarkPHOLDSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := NewEngine(7)
				s, err := NewSharded(e, 8, shards, 600)
				if err != nil {
					b.Fatal(err)
				}
				p := newPHOLD(8, 200_000)
				p.seedInto(s)
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(e.ExecutedEvents()), "events")
				}
			}
		})
	}
}
