package dragonfly_test

import (
	"runtime"
	"testing"

	"dragonfly"
	"dragonfly/internal/workloads"
)

// TestParseGeometry pins the ladder-rung and preset grammar.
func TestParseGeometry(t *testing.T) {
	good := []struct {
		in      string
		nodes   int
		routers int
	}{
		{"small", 64, 32},
		{"SMALL", 64, 32},
		{" medium ", 192, 96},
		{"large", 2304, 576},
		{"daint", 5376, 1344},
		{"small:2", 32, 16},
		{"medium:3", 96, 48},
		{"aries:2", 768, 192},
	}
	for _, c := range good {
		g, err := dragonfly.ParseGeometry(c.in)
		if err != nil {
			t.Fatalf("ParseGeometry(%q): %v", c.in, err)
		}
		if g.Nodes() != c.nodes || g.Routers() != c.routers {
			t.Fatalf("ParseGeometry(%q) = %d nodes / %d routers, want %d / %d",
				c.in, g.Nodes(), g.Routers(), c.nodes, c.routers)
		}
	}
	bad := []string{"", "tiny", "aries", "small:0", "small:-1", "small:x", "large:3", "daint:2", "small:"}
	for _, in := range bad {
		if _, err := dragonfly.ParseGeometry(in); err == nil {
			t.Fatalf("ParseGeometry(%q) unexpectedly succeeded", in)
		}
	}
}

// TestGeometryLadderValidAscending checks every ladder rung builds and that
// the rungs genuinely ascend in machine size.
func TestGeometryLadderValidAscending(t *testing.T) {
	rungs := dragonfly.GeometryLadder()
	if len(rungs) != 4 {
		t.Fatalf("ladder has %d rungs, want 4", len(rungs))
	}
	prev := 0
	for _, rung := range rungs {
		if err := rung.Geometry.Validate(); err != nil {
			t.Fatalf("rung %s: %v", rung.Name, err)
		}
		if n := rung.Geometry.Nodes(); n <= prev {
			t.Fatalf("rung %s (%d nodes) does not grow past the previous rung (%d)", rung.Name, n, prev)
		} else {
			prev = n
		}
	}
}

// TestStreamStatsMatchesSliceRun pins the streaming-stats contract: a
// StreamStats run produces the same aggregate counters and the same digest
// summary as the slice-backed run of an identically-built system, with the
// per-iteration slices elided.
func TestStreamStatsMatchesSliceRun(t *testing.T) {
	run := func(stream bool) dragonfly.Result {
		sys, err := dragonfly.New(
			dragonfly.WithGeometry(dragonfly.SmallGeometry(4)),
			dragonfly.WithSeed(5),
		)
		if err != nil {
			t.Fatal(err)
		}
		job, err := sys.Allocate(dragonfly.GroupStriped, 12)
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Run(&workloads.Alltoall{MessageBytes: 2 << 10, Iterations: 1},
			dragonfly.RunOptions{Iterations: 5, StreamStats: stream})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	slice, stream := run(false), run(true)
	if len(stream.Times) != 0 || len(stream.Deltas) != 0 {
		t.Fatalf("StreamStats run kept per-iteration slices: %d times, %d deltas",
			len(stream.Times), len(stream.Deltas))
	}
	if len(slice.Times) != 5 {
		t.Fatalf("slice run recorded %d times, want 5", len(slice.Times))
	}
	if slice.Counters != stream.Counters {
		t.Fatalf("aggregate counters diverge:\nslice  %+v\nstream %+v", slice.Counters, stream.Counters)
	}
	if got, want := stream.TimeSummary(), slice.TimeSummary(); got != want {
		t.Fatalf("digest summaries diverge:\nslice  %+v\nstream %+v", want, got)
	}
	if got, want := stream.Time(), slice.Time(); got != want {
		t.Fatalf("total time diverges: stream %d, slice %d", got, want)
	}
}

// TestGeometryLadderMemoryBudget walks the full ladder, building each rung
// and running a short workload on it, and enforces a per-rung live-heap
// budget. The logged numbers are the source of EXPERIMENTS.md's
// memory-budget table; the budgets are set ~4x above the measured values so
// the test flags regressions, not noise.
func TestGeometryLadderMemoryBudget(t *testing.T) {
	budgets := map[string]uint64{ // live heap after build+run, in MiB
		"small":  16,
		"medium": 16,
		"large":  32,
		"daint":  64,
	}
	for _, rung := range dragonfly.GeometryLadder() {
		rung := rung
		t.Run(rung.Name, func(t *testing.T) {
			sys, err := dragonfly.New(
				dragonfly.WithGeometry(rung.Geometry),
				dragonfly.WithSeed(1),
			)
			if err != nil {
				t.Fatal(err)
			}
			job, err := sys.Allocate(dragonfly.GroupStriped, 16)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := job.Run(&workloads.Alltoall{MessageBytes: 2 << 10, Iterations: 1},
				dragonfly.RunOptions{Iterations: 2, StreamStats: true}); err != nil {
				t.Fatal(err)
			}
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			tp := sys.Topology()
			t.Logf("%s: %d nodes, %d routers, %d links, adjacency %.1f KiB, live heap %.2f MiB",
				rung.Name, tp.NumNodes(), tp.NumRouters(), tp.NumLinks(),
				float64(tp.AdjacencyBytes())/1024, float64(ms.HeapAlloc)/(1<<20))
			if got := ms.HeapAlloc >> 20; got > budgets[rung.Name] {
				t.Fatalf("rung %s holds %d MiB live heap, budget %d MiB", rung.Name, got, budgets[rung.Name])
			}
		})
	}
}

// TestDaintScaleBuildsAndRuns is the machine-scale acceptance test: a
// Daint-class system (14 full Aries groups, 5376 nodes) builds, allocates a
// job, runs a short workload under the streaming-stats path, and stays far
// inside the 2 GiB budget the compact arenas exist for.
func TestDaintScaleBuildsAndRuns(t *testing.T) {
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.Daint),
		dragonfly.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	tp := sys.Topology()
	if tp.NumNodes() != 5376 || tp.NumRouters() != 1344 {
		t.Fatalf("Daint rung is %d nodes / %d routers, want 5376 / 1344", tp.NumNodes(), tp.NumRouters())
	}
	job, err := sys.Allocate(dragonfly.GroupStriped, 32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(&workloads.Alltoall{MessageBytes: 2 << 10, Iterations: 1},
		dragonfly.RunOptions{Iterations: 2, StreamStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeStats.Count() != 2 || res.TimeStats.Mean() <= 0 {
		t.Fatalf("Daint run measured nothing: %+v", res.TimeStats)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	// The acceptance bar is < 2 GiB RSS; the arenas keep the live heap two
	// orders of magnitude under that, so flag anything past 512 MiB as a
	// memory regression.
	if ms.HeapAlloc > 512<<20 {
		t.Fatalf("Daint-scale run holds %d MiB live heap, want < 512 MiB", ms.HeapAlloc>>20)
	}
	t.Logf("Daint-scale: %d nodes, %d routers, %d links, adjacency %.1f KiB, live heap %.1f MiB",
		tp.NumNodes(), tp.NumRouters(), tp.NumLinks(),
		float64(tp.AdjacencyBytes())/1024, float64(ms.HeapAlloc)/(1<<20))
}
