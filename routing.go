package dragonfly

import (
	"dragonfly/internal/core"
	"dragonfly/internal/mpi"
)

// Routing names one routing configuration a job can run under: a factory for
// per-rank routing providers plus an optional statistics hook. The standard
// configurations come from StaticRouting, DefaultRouting and AppAware;
// applications with bespoke selection logic fill the struct directly (the
// fields are the same extension point the experiment suite uses).
type Routing struct {
	// Name labels the configuration in results and tables.
	Name string
	// Provider builds the per-rank routing provider. It is called once per
	// rank per run, so stateful selectors are rank-private.
	Provider func(rank int) RoutingProvider
	// Stats, if non-nil, returns the aggregated selector statistics after a
	// run (only meaningful for selector-driven configurations).
	Stats func() SelectorStats
}

// StaticRouting applies one routing mode to every message.
func StaticRouting(mode Mode) Routing {
	return Routing{
		Name:     mode.String(),
		Provider: func(int) RoutingProvider { return mpi.StaticRouting{Mode: mode} },
	}
}

// DefaultRouting is the system default the paper compares against: ADAPTIVE_0
// for everything except alltoall, which uses ADAPTIVE_1 (Increasingly Minimal
// Bias), mirroring Cray MPICH's defaults.
func DefaultRouting() Routing {
	return Routing{
		Name:     "Default",
		Provider: func(int) RoutingProvider { return mpi.DefaultRouting() },
	}
}

// AppAware is the paper's application-aware routing library with the default
// Algorithm 1 tunables: one selector per rank, statistics aggregated over the
// job.
func AppAware() Routing { return AppAwareWith(core.DefaultConfig()) }

// AppAwareWith is AppAware with explicit selector tunables. The returned
// Routing is reusable across Run calls like the static configurations: the
// per-rank selector set starts fresh each time a communicator is built (the
// provider is always asked for rank 0 first), so Stats covers only the most
// recent run.
func AppAwareWith(cfg SelectorConfig) Routing {
	var selectors []*core.Selector
	return Routing{
		Name: "AppAware",
		Provider: func(rank int) RoutingProvider {
			if rank == 0 {
				selectors = selectors[:0]
			}
			s := core.MustNew(cfg)
			selectors = append(selectors, s)
			return mpi.AppAwareRouting{Selector: s}
		},
		Stats: func() SelectorStats {
			var agg SelectorStats
			for _, s := range selectors {
				agg.Add(s.Stats())
			}
			return agg
		},
	}
}

// ParseRouting maps a command-line routing name to a configuration:
// "default" (the Cray MPICH defaults), "appaware" (the paper's library), or
// any MPICH_GNI_ROUTING_MODE-style mode name accepted by ParseMode.
func ParseRouting(s string) (Routing, error) {
	switch s {
	case "default":
		return DefaultRouting(), nil
	case "appaware":
		return AppAware(), nil
	default:
		mode, err := ParseMode(s)
		if err != nil {
			return Routing{}, err
		}
		r := StaticRouting(mode)
		r.Name = s
		return r, nil
	}
}
