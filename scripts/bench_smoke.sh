#!/bin/sh
# bench_smoke.sh — allocation-regression gate for the experiment suite.
#
# Runs BenchmarkSuiteSerial once (-benchtime=1x) and compares its allocs/op
# against the budget checked in as BENCH_budget.txt. The run fails when
# allocs/op exceeds the budget by more than 10%: the hot-path refactors (PR 3
# onwards) hold their gains through an explicit number, not through vigilance.
#
# After an intentional allocation change, refresh the budget:
#   go test -run '^$' -bench '^BenchmarkSuiteSerial$' -benchmem -benchtime 1x .
# and copy the new allocs/op into BENCH_budget.txt with a justification in
# the PR description.
set -eu
cd "$(dirname "$0")/.."

budget=$(awk '$1 == "allocs_per_op" {print $2}' BENCH_budget.txt)
if [ -z "$budget" ]; then
    echo "bench_smoke: no allocs_per_op entry in BENCH_budget.txt" >&2
    exit 2
fi

out=$(go test -run '^$' -bench '^BenchmarkSuiteSerial$' -benchmem -benchtime 1x -timeout 30m .)
echo "$out"
allocs=$(echo "$out" | awk '/^BenchmarkSuiteSerial/ {for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}')
if [ -z "$allocs" ]; then
    echo "bench_smoke: could not find allocs/op in benchmark output" >&2
    exit 2
fi

limit=$((budget + budget / 10))
if [ "$allocs" -gt "$limit" ]; then
    echo "bench_smoke: FAIL — allocs/op $allocs exceeds budget $budget (+10% = $limit)" >&2
    exit 1
fi
echo "bench_smoke: OK — allocs/op $allocs within budget $budget (+10% = $limit)"

# Second gate: the sharded engine path. BenchmarkDaintSharded/shards=4 runs
# the Daint workload on the group-sharded engine (and fails itself if the
# output drifts from serial); its allocs/op budget keeps the sharding
# machinery — mailboxes, window workers, per-shard heaps — from growing an
# allocation habit on the hot path.
sbudget=$(awk '$1 == "sharded_allocs_per_op" {print $2}' BENCH_budget.txt)
if [ -z "$sbudget" ]; then
    echo "bench_smoke: no sharded_allocs_per_op entry in BENCH_budget.txt" >&2
    exit 2
fi

out=$(go test -run '^$' -bench '^BenchmarkDaintSharded/shards=4$' -benchmem -benchtime 1x -timeout 30m .)
echo "$out"
sallocs=$(echo "$out" | awk '/^BenchmarkDaintSharded/ {for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}')
if [ -z "$sallocs" ]; then
    echo "bench_smoke: could not find allocs/op in sharded benchmark output" >&2
    exit 2
fi

slimit=$((sbudget + sbudget / 10))
if [ "$sallocs" -gt "$slimit" ]; then
    echo "bench_smoke: FAIL — sharded allocs/op $sallocs exceeds budget $sbudget (+10% = $slimit)" >&2
    exit 1
fi
echo "bench_smoke: OK — sharded allocs/op $sallocs within budget $sbudget (+10% = $slimit)"

# Third gate: the open-arrival scheduling engine. BenchmarkOpenStream drains
# 300k job events on the Daint geometry; its allocs/op budget enforces the
# subsystem's design contract that steady-state operation allocates nothing
# per job (the count is the fixed system-build cost, not O(events)).
obudget=$(awk '$1 == "openstream_allocs_per_op" {print $2}' BENCH_budget.txt)
if [ -z "$obudget" ]; then
    echo "bench_smoke: no openstream_allocs_per_op entry in BENCH_budget.txt" >&2
    exit 2
fi

out=$(go test -run '^$' -bench '^BenchmarkOpenStream$' -benchmem -benchtime 1x -timeout 30m .)
echo "$out"
oallocs=$(echo "$out" | awk '/^BenchmarkOpenStream/ {for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}')
if [ -z "$oallocs" ]; then
    echo "bench_smoke: could not find allocs/op in openstream benchmark output" >&2
    exit 2
fi

olimit=$((obudget + obudget / 10))
if [ "$oallocs" -gt "$olimit" ]; then
    echo "bench_smoke: FAIL — openstream allocs/op $oallocs exceeds budget $obudget (+10% = $olimit)" >&2
    exit 1
fi
echo "bench_smoke: OK — openstream allocs/op $oallocs within budget $obudget (+10% = $olimit)"

# Fourth gate: the shardable-UGAL packet path. The variant=shardable rows of
# BenchmarkDaintSharded execute ~96% of events as conforming-parallel work
# inside horizon windows; the budget enforces the variant's design contract
# that per-group RNG lanes and congestion replicas are allocated once at
# build/Reset — allocations must stay O(system), never O(windows) (the run
# executes >1000 windows, so a per-window replica would blow the +10% margin
# a hundred times over).
vbudget=$(awk '$1 == "shardable_allocs_per_op" {print $2}' BENCH_budget.txt)
if [ -z "$vbudget" ]; then
    echo "bench_smoke: no shardable_allocs_per_op entry in BENCH_budget.txt" >&2
    exit 2
fi

out=$(go test -run '^$' -bench '^BenchmarkDaintSharded/variant=shardable/shards=4$' -benchmem -benchtime 1x -timeout 30m .)
echo "$out"
vallocs=$(echo "$out" | awk '/^BenchmarkDaintSharded/ {for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}')
if [ -z "$vallocs" ]; then
    echo "bench_smoke: could not find allocs/op in shardable benchmark output" >&2
    exit 2
fi

vlimit=$((vbudget + vbudget / 10))
if [ "$vallocs" -gt "$vlimit" ]; then
    echo "bench_smoke: FAIL — shardable allocs/op $vallocs exceeds budget $vbudget (+10% = $vlimit)" >&2
    exit 1
fi
echo "bench_smoke: OK — shardable allocs/op $vallocs within budget $vbudget (+10% = $vlimit)"

# Fifth gate: steady-state horizon windows. BenchmarkShardedWindowSteadyState
# (package internal/sim) advances a warmed sharded engine — worker pool
# spawned, arenas at capacity — window after window; its budget is exactly 0
# allocs/op. Unlike the other gates this one has no +10% slack: a single
# allocation per RunUntil segment means something on the per-window path
# (worker wake, barrier collect, context reuse, heap growth) regressed.
wbudget=$(awk '$1 == "window_allocs_per_op" {print $2}' BENCH_budget.txt)
if [ -z "$wbudget" ]; then
    echo "bench_smoke: no window_allocs_per_op entry in BENCH_budget.txt" >&2
    exit 2
fi

out=$(go test -run '^$' -bench '^BenchmarkShardedWindowSteadyState$' -benchmem -benchtime 50x -timeout 30m ./internal/sim)
echo "$out"
wallocs=$(echo "$out" | awk '/^BenchmarkShardedWindowSteadyState/ {for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}')
if [ -z "$wallocs" ]; then
    echo "bench_smoke: could not find allocs/op in window benchmark output" >&2
    exit 2
fi

if [ "$wallocs" -gt "$wbudget" ]; then
    echo "bench_smoke: FAIL — steady-state window allocs/op $wallocs exceeds budget $wbudget (no slack: windows must be allocation-free)" >&2
    exit 1
fi
echo "bench_smoke: OK — steady-state window allocs/op $wallocs within budget $wbudget"

# Sixth gate: the decision-trace data path. BenchmarkCounterfactual runs the
# counterfactual experiment — recorder on, ~33k adaptive decisions recorded
# per op — and its budget enforces the recorder's design contract: fixed-size
# records into rings preallocated at system build, zero allocations per
# recorded decision (the TestRouteAllocationFree unit test pins the per-call
# path; this gate pins the end-to-end experiment).
cbudget=$(awk '$1 == "counterfactual_allocs_per_op" {print $2}' BENCH_budget.txt)
if [ -z "$cbudget" ]; then
    echo "bench_smoke: no counterfactual_allocs_per_op entry in BENCH_budget.txt" >&2
    exit 2
fi

out=$(go test -run '^$' -bench '^BenchmarkCounterfactual$' -benchmem -benchtime 1x -timeout 30m .)
echo "$out"
callocs=$(echo "$out" | awk '/^BenchmarkCounterfactual/ {for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}')
if [ -z "$callocs" ]; then
    echo "bench_smoke: could not find allocs/op in counterfactual benchmark output" >&2
    exit 2
fi

climit=$((cbudget + cbudget / 10))
if [ "$callocs" -gt "$climit" ]; then
    echo "bench_smoke: FAIL — counterfactual allocs/op $callocs exceeds budget $cbudget (+10% = $climit)" >&2
    exit 1
fi
echo "bench_smoke: OK — counterfactual allocs/op $callocs within budget $cbudget (+10% = $climit)"
