package dragonfly_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"dragonfly"
	"dragonfly/internal/workloads"
)

func testSystem(t *testing.T, opts ...dragonfly.Option) *dragonfly.System {
	t.Helper()
	opts = append([]dragonfly.Option{
		dragonfly.WithGeometry(dragonfly.SmallGeometry(2)),
		dragonfly.WithSeed(7),
	}, opts...)
	sys, err := dragonfly.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewDefaults(t *testing.T) {
	sys, err := dragonfly.New()
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Topology().Config().Groups; got != 4 {
		t.Fatalf("default geometry has %d groups, want 4", got)
	}
	if sys.Seed() != 1 {
		t.Fatalf("default seed = %d, want 1", sys.Seed())
	}
	if sys.Telemetry() != nil {
		t.Fatal("telemetry collector installed without WithTelemetry")
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := dragonfly.New(dragonfly.WithGeometry(dragonfly.Geometry{})); err == nil {
		t.Fatal("invalid geometry accepted")
	}
	if _, err := dragonfly.New(dragonfly.WithRouting(dragonfly.RoutingParams{})); err == nil {
		t.Fatal("invalid routing params accepted")
	}
	if _, err := dragonfly.New(dragonfly.WithNetworkConfig(dragonfly.NetworkConfig{})); err == nil {
		t.Fatal("invalid network config accepted")
	}
	if _, err := dragonfly.New(dragonfly.WithNoise(dragonfly.NoiseConfig{Nodes: 1})); err == nil {
		t.Fatal("one-node noise job accepted")
	}
}

func TestAllocateTooLarge(t *testing.T) {
	sys := testSystem(t)
	machine := sys.Topology().NumNodes()
	if _, err := sys.Allocate(dragonfly.GroupStriped, machine+1); !errors.Is(err, dragonfly.ErrJobTooLarge) {
		t.Fatalf("Allocate(machine+1): err = %v, want ErrJobTooLarge", err)
	}
	if _, err := sys.Allocate(dragonfly.GroupStriped, 0); err == nil {
		t.Fatal("Allocate(0) accepted")
	}
	// A machine-filling job is fine; the next allocation of any size is not.
	if _, err := sys.Allocate(dragonfly.Contiguous, machine); err != nil {
		t.Fatalf("Allocate(machine): %v", err)
	}
	if _, err := sys.Allocate(dragonfly.Contiguous, 1); !errors.Is(err, dragonfly.ErrJobTooLarge) {
		t.Fatalf("Allocate on a full machine: err = %v, want ErrJobTooLarge", err)
	}
}

func TestJobsAreDisjoint(t *testing.T) {
	sys := testSystem(t)
	a, err := sys.Allocate(dragonfly.RandomScatter, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Allocate(dragonfly.RandomScatter, 6)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[dragonfly.NodeID]bool)
	for _, n := range a.Nodes() {
		seen[n] = true
	}
	for _, n := range b.Nodes() {
		if seen[n] {
			t.Fatalf("node %d allocated to both jobs", n)
		}
	}
	if free := sys.FreeNodes(); free != sys.Topology().NumNodes()-12 {
		t.Fatalf("FreeNodes = %d, want %d", free, sys.Topology().NumNodes()-12)
	}
}

func TestAllocatePairCollision(t *testing.T) {
	sys := testSystem(t)
	// Contiguous takes the low node ids, which is exactly where the
	// deterministic pair nodes live.
	if _, err := sys.Allocate(dragonfly.Contiguous, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AllocatePair(dragonfly.InterGroups); err == nil {
		t.Fatal("AllocatePair handed out nodes that belong to another job")
	}
	// On a fresh system the same pair is fine.
	fresh := testSystem(t)
	pair, err := fresh.AllocatePair(dragonfly.InterGroups)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Size() != 2 {
		t.Fatalf("pair has %d nodes, want 2", pair.Size())
	}
}

func TestRunDeterministic(t *testing.T) {
	measure := func() dragonfly.Result {
		sys := testSystem(t)
		job, err := sys.Allocate(dragonfly.GroupStriped, 4)
		if err != nil {
			t.Fatal(err)
		}
		sys.StartNoise(dragonfly.NoiseConfig{Pattern: dragonfly.NoiseUniform, Nodes: 4})
		res, err := job.Run(&workloads.PingPong{MessageBytes: 4 << 10, Iterations: 2},
			dragonfly.RunOptions{Routing: dragonfly.StaticRouting(dragonfly.Adaptive), Iterations: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := measure(), measure()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("two identically-built systems measured differently:\n%+v\n%+v", r1, r2)
	}
	if len(r1.Times) != 3 || len(r1.Deltas) != 3 {
		t.Fatalf("got %d times / %d deltas, want 3 / 3", len(r1.Times), len(r1.Deltas))
	}
	if r1.Time() <= 0 {
		t.Fatal("run took no simulated time")
	}
	if r1.Counters.RequestPackets == 0 {
		t.Fatal("run moved no NIC packets")
	}
	if r1.TileFlits == 0 {
		t.Fatal("run moved no tile flits through the job's routers")
	}
}

func TestRunAppAwareStats(t *testing.T) {
	sys := testSystem(t)
	job, err := sys.Allocate(dragonfly.GroupStriped, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(&workloads.Alltoall{MessageBytes: 16 << 10, Iterations: 1},
		dragonfly.RunOptions{Routing: dragonfly.AppAware(), Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasSelectorStats {
		t.Fatal("AppAware run reported no selector stats")
	}
	if res.SelectorStats.Messages == 0 {
		t.Fatal("selector saw no messages")
	}
	if res.Setup != "AppAware" {
		t.Fatalf("Setup = %q, want AppAware", res.Setup)
	}
}

// TestAppAwareRoutingReusable pins that one AppAware Routing value can be
// used for several runs like the static configurations: each run's stats
// cover only that run, not an accumulation over all previous ones.
func TestAppAwareRoutingReusable(t *testing.T) {
	sys := testSystem(t)
	job, err := sys.Allocate(dragonfly.GroupStriped, 4)
	if err != nil {
		t.Fatal(err)
	}
	aware := dragonfly.AppAware()
	w := &workloads.Alltoall{MessageBytes: 16 << 10, Iterations: 1}
	r1, err := job.Run(w, dragonfly.RunOptions{Routing: aware})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := job.Run(w, dragonfly.RunOptions{Routing: aware})
	if err != nil {
		t.Fatal(err)
	}
	if r2.SelectorStats.Messages != r1.SelectorStats.Messages {
		t.Fatalf("second run reports %d selector messages, want %d (per-run stats, not cumulative)",
			r2.SelectorStats.Messages, r1.SelectorStats.Messages)
	}
}

// TestNoiseGeneratorsIndependent pins that two background jobs with the same
// pattern draw from different random streams rather than moving in lockstep.
func TestNoiseGeneratorsIndependent(t *testing.T) {
	sys := testSystem(t)
	g1 := sys.StartNoise(dragonfly.NoiseConfig{Pattern: dragonfly.NoiseUniform, Nodes: 4})
	g2 := sys.StartNoise(dragonfly.NoiseConfig{Pattern: dragonfly.NoiseUniform, Nodes: 4})
	if g1 == nil || g2 == nil {
		t.Fatal("generators did not start")
	}
	sys.Engine().RunUntil(2_000_000)
	if g1.MessagesSent() == 0 || g2.MessagesSent() == 0 {
		t.Fatalf("generators idle: %d / %d messages", g1.MessagesSent(), g2.MessagesSent())
	}
	// Same node count, same pattern, same horizon: identical seeds would send
	// identical message counts in lockstep. (Deterministic for a fixed seed.)
	if g1.MessagesSent() == g2.MessagesSent() && g1.BytesSent() == g2.BytesSent() {
		t.Fatalf("same-pattern generators are in lockstep: %d messages / %d bytes each",
			g1.MessagesSent(), g1.BytesSent())
	}
}

func TestRunRecordsDeliveries(t *testing.T) {
	sys := testSystem(t)
	job, err := sys.AllocatePair(dragonfly.InterGroups)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(&workloads.PingPong{MessageBytes: 1 << 10, Iterations: 4},
		dragonfly.RunOptions{RecordDeliveries: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deliveries) == 0 {
		t.Fatal("RecordDeliveries captured nothing")
	}
	for _, d := range res.Deliveries {
		if d.DeliveredAt < d.SendStart {
			t.Fatalf("delivery finished before it started: %+v", d)
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	sys := testSystem(t)
	job, err := sys.Allocate(dragonfly.GroupStriped, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = job.Run(&workloads.PingPong{MessageBytes: 1 << 10, Iterations: 1},
		dragonfly.RunOptions{Context: ctx, Iterations: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

func TestWithNoiseStartsOnFirstAllocation(t *testing.T) {
	sys := testSystem(t, dragonfly.WithNoise(dragonfly.NoiseConfig{
		Pattern: dragonfly.NoiseUniform, Nodes: 4,
	}))
	if len(sys.NoiseGenerators()) != 0 {
		t.Fatal("noise started before any job was allocated")
	}
	job, err := sys.Allocate(dragonfly.GroupStriped, 4)
	if err != nil {
		t.Fatal(err)
	}
	gens := sys.NoiseGenerators()
	if len(gens) != 1 {
		t.Fatalf("got %d noise generators after first allocation, want 1", len(gens))
	}
	// The background job fits next to the measured job and actually runs.
	if gens[0].NumNodes()+job.Size() > sys.Topology().NumNodes() {
		t.Fatal("background job overlaps the measured job")
	}
	sys.Engine().RunUntil(200_000)
	if gens[0].MessagesSent() == 0 {
		t.Fatal("background generator sent nothing")
	}
}

func TestStartNoiseNoRoom(t *testing.T) {
	sys := testSystem(t)
	machine := sys.Topology().NumNodes()
	if _, err := sys.Allocate(dragonfly.Contiguous, machine-1); err != nil {
		t.Fatal(err)
	}
	if g := sys.StartNoise(dragonfly.NoiseConfig{Pattern: dragonfly.NoiseUniform, Nodes: 8}); g != nil {
		t.Fatal("noise generator started with a single free node")
	}
}

func TestWithTelemetryCollects(t *testing.T) {
	sys := testSystem(t, dragonfly.WithTelemetry(dragonfly.TelemetryConfig{IntervalCycles: 10_000}))
	col := sys.Telemetry()
	if col == nil {
		t.Fatal("WithTelemetry installed no collector")
	}
	job, err := sys.Allocate(dragonfly.GroupStriped, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(&workloads.Alltoall{MessageBytes: 8 << 10, Iterations: 1},
		dragonfly.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	col.Stop()
	col.Flush()
	if len(col.Samples()) == 0 {
		t.Fatal("collector took no samples during the run")
	}
}

// TestResetMatchesFresh is the facade half of cross-trial reuse: a System
// rewound with Reset(seed) must measure byte-identically to a System freshly
// built with that seed — allocation placement, background noise, run times,
// counters, everything.
func TestResetMatchesFresh(t *testing.T) {
	measure := func(sys *dragonfly.System) dragonfly.Result {
		t.Helper()
		job, err := sys.Allocate(dragonfly.GroupStriped, 4)
		if err != nil {
			t.Fatal(err)
		}
		if g := sys.StartNoise(dragonfly.NoiseConfig{Pattern: dragonfly.NoiseUniform, Nodes: 4}); g == nil {
			t.Fatal("noise did not start")
		}
		res, err := job.Run(&workloads.PingPong{MessageBytes: 4 << 10, Iterations: 2},
			dragonfly.RunOptions{Routing: dragonfly.StaticRouting(dragonfly.Adaptive), Iterations: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	build := func(seed int64) *dragonfly.System {
		t.Helper()
		sys, err := dragonfly.New(dragonfly.WithGeometry(dragonfly.SmallGeometry(2)), dragonfly.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	reused := build(3)
	first := measure(reused) // dirty the system with a first trial

	// Reset to a different seed: must match a fresh system with that seed.
	if err := reused.Reset(7); err != nil {
		t.Fatal(err)
	}
	if got := measure(reused); !reflect.DeepEqual(got, measure(build(7))) {
		t.Fatalf("Reset(7) system measured differently from a fresh seed-7 system:\n%+v", got)
	}

	// Reset back to the original seed: must reproduce the first measurement.
	if err := reused.Reset(3); err != nil {
		t.Fatal(err)
	}
	if got := measure(reused); !reflect.DeepEqual(got, first) {
		t.Fatalf("Reset(3) system did not reproduce its own first trial:\nfirst: %+v\nreset: %+v", first, got)
	}
	if reused.Seed() != 3 {
		t.Fatalf("Seed() after Reset = %d, want 3", reused.Seed())
	}
}

// TestResetRearmsWithNoise pins that a WithNoise spec is re-armed by Reset:
// the background job starts again at the first allocation of the new epoch.
func TestResetRearmsWithNoise(t *testing.T) {
	sys := testSystem(t, dragonfly.WithNoise(dragonfly.NoiseConfig{
		Pattern: dragonfly.NoiseUniform, Nodes: 4,
	}))
	if _, err := sys.Allocate(dragonfly.GroupStriped, 4); err != nil {
		t.Fatal(err)
	}
	if len(sys.NoiseGenerators()) != 1 {
		t.Fatal("noise did not start on first allocation")
	}
	if err := sys.Reset(7); err != nil {
		t.Fatal(err)
	}
	if len(sys.NoiseGenerators()) != 0 {
		t.Fatal("Reset kept the previous epoch's noise generators")
	}
	if _, err := sys.Allocate(dragonfly.GroupStriped, 4); err != nil {
		t.Fatal(err)
	}
	if len(sys.NoiseGenerators()) != 1 {
		t.Fatal("WithNoise spec was not re-armed by Reset")
	}
}

// TestResetStaleJob: a job allocated before a Reset must refuse to run.
func TestResetStaleJob(t *testing.T) {
	sys := testSystem(t)
	job, err := sys.Allocate(dragonfly.GroupStriped, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Reset(7); err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(&workloads.PingPong{MessageBytes: 1 << 10, Iterations: 1},
		dragonfly.RunOptions{}); err == nil {
		t.Fatal("stale job ran on a reset system")
	}
}

// TestResetFreesNodes: allocations from before the Reset no longer occupy
// the machine.
func TestResetFreesNodes(t *testing.T) {
	sys := testSystem(t)
	machine := sys.Topology().NumNodes()
	if _, err := sys.Allocate(dragonfly.Contiguous, machine); err != nil {
		t.Fatal(err)
	}
	if sys.FreeNodes() != 0 {
		t.Fatalf("FreeNodes = %d after a machine-filling job", sys.FreeNodes())
	}
	if err := sys.Reset(7); err != nil {
		t.Fatal(err)
	}
	if sys.FreeNodes() != machine {
		t.Fatalf("FreeNodes after Reset = %d, want %d", sys.FreeNodes(), machine)
	}
	if _, err := sys.Allocate(dragonfly.Contiguous, machine); err != nil {
		t.Fatalf("machine-filling job after Reset: %v", err)
	}
}

func TestParseRouting(t *testing.T) {
	for _, name := range []string{"default", "appaware", "ADAPTIVE_0", "ADAPTIVE_3", "MIN_HASH"} {
		rc, err := dragonfly.ParseRouting(name)
		if err != nil {
			t.Fatalf("ParseRouting(%q): %v", name, err)
		}
		if rc.Provider == nil {
			t.Fatalf("ParseRouting(%q) has no provider", name)
		}
	}
	if _, err := dragonfly.ParseRouting("nope"); err == nil {
		t.Fatal("ParseRouting accepted an unknown name")
	}
}
