// Package dragonfly is the public face of the simulator: one composable API
// to stand up a simulated Aries/Dragonfly system and drive jobs on it. It
// replaces the ad-hoc seven-step wiring (topology → routing policy → event
// engine → fabric → allocation → MPI → selector) that every consumer used to
// repeat by hand.
//
// The three nouns are System, Job and Result:
//
//	sys, err := dragonfly.New(
//		dragonfly.WithGeometry(dragonfly.SmallGeometry(4)),
//		dragonfly.WithSeed(42),
//	)
//	job, err := sys.Allocate(dragonfly.GroupStriped, 16)
//	res, err := job.Run(w, dragonfly.RunOptions{
//		Routing:    dragonfly.StaticRouting(dragonfly.AdaptiveHighBias),
//		Iterations: 3,
//	})
//
// A System owns a private topology, discrete-event engine, fabric and random
// stream, all derived from one seed, so two Systems built from the same
// options behave identically. Jobs allocated from a System exclude each
// other's nodes; background noise started with StartNoise (or WithNoise) is
// placed on the remaining nodes. A Result carries the execution times, the
// job-summed NIC counter deltas, router tile counter deltas, the
// application-aware selector statistics and (optionally) the raw message
// deliveries.
//
// Everything heavier — the experiment suite, the parallel trial harness, the
// batch scheduler, trace record/replay — composes with this package through
// the escape hatches System.Topology, System.Engine and System.Fabric rather
// than replacing it.
package dragonfly

import (
	"errors"
	"fmt"
	"math/rand"

	"dragonfly/internal/alloc"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/telemetry"
	"dragonfly/internal/topo"
)

// DefaultHorizon is the deadline handed to background noise generators and
// auto-started telemetry collectors; simulated runs complete far before it.
const DefaultHorizon sim.Time = 1 << 50

// ErrJobTooLarge is returned (wrapped) by System.Allocate when the requested
// job does not fit on the machine's free nodes. Callers that prefer the old
// clamp-to-machine-size behaviour must clamp explicitly; the facade never
// silently truncates a job.
var ErrJobTooLarge = errors.New("dragonfly: job too large")

// System is one simulated Dragonfly machine: topology, routing policy,
// discrete-event engine, fabric and the random stream that places jobs on it.
// A System is not safe for concurrent use; build one System per goroutine
// (the trial harness does exactly that).
type System struct {
	cfg       config
	topo      *topo.Topology
	policy    *routing.Policy
	engine    *sim.Engine
	fabric    *network.Fabric
	sharded   *sim.Sharded
	rng       *rand.Rand
	collector *telemetry.Collector
	decisions *routing.DecisionTrace

	// used tracks every node handed out to a job or a background noise
	// generator, so later allocations land on free nodes.
	used map[topo.NodeID]bool
	// epoch counts Resets; jobs remember the epoch they were allocated in so
	// running a stale job after a Reset fails loudly instead of measuring a
	// rewound machine.
	epoch uint64
	// pendingNoise is the WithNoise spec, started when the first job is
	// allocated (so the background job can exclude the measured job's nodes).
	pendingNoise *NoiseConfig
	noiseGens    []*noise.Generator
}

// New builds a simulated system from the given options. With no options it
// builds a small four-group machine seeded with 1. The construction order
// (topology, policy, engine, fabric, allocation RNG) is fixed and
// deterministic: two Systems built from equal options are byte-identical.
func New(opts ...Option) (*System, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	t, err := topo.New(cfg.geometry)
	if err != nil {
		return nil, err
	}
	pol, err := routing.NewPolicy(t, cfg.routing)
	if err != nil {
		return nil, err
	}
	engine := sim.NewEngine(cfg.seed)
	fab, err := network.New(engine, t, pol, cfg.network)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:    cfg,
		topo:   t,
		policy: pol,
		engine: engine,
		fabric: fab,
		rng:    rand.New(rand.NewSource(cfg.seed)),
		used:   make(map[topo.NodeID]bool),
	}
	lookahead := fab.LookaheadCycles()
	groups := t.Config().Groups
	shardable := cfg.variant == routing.ShardableUGAL
	if shardable && (groups < 2 || lookahead <= 0) {
		return nil, fmt.Errorf("dragonfly: ShardableUGAL needs a multi-group geometry (got %d groups); use the default ExactUGAL variant", groups)
	}
	if cfg.staleness > 1 && !shardable {
		return nil, fmt.Errorf("dragonfly: WithReplicaStaleness(%d) requires WithRoutingVariant(ShardableUGAL); ExactUGAL has no congestion replicas", cfg.staleness)
	}
	// ShardableUGAL always runs on the sharded driver, even when the resolved
	// shard count is 1: the variant's byte stream is defined by the driver's
	// window schedule, so pinning it to the driver keeps output identical
	// across every shard count instead of splitting into a serial dialect.
	if n := resolveShards(cfg.shards, groups, int64(lookahead)); n > 1 || shardable {
		sh, err := sim.NewSharded(engine, groups, n, lookahead)
		if err != nil {
			return nil, err
		}
		if err := fab.AttachSharding(sh); err != nil {
			return nil, err
		}
		s.sharded = sh
	}
	var sp *routing.ShardedPolicy
	if shardable {
		sp, err = routing.NewShardedPolicy(t, cfg.routing, groups, cfg.seed)
		if err != nil {
			return nil, err
		}
		if err := fab.EnableShardable(sp, cfg.staleness); err != nil {
			return nil, err
		}
	}
	if cfg.decisionTrace > 0 {
		tr, err := routing.NewDecisionTrace(groups, cfg.decisionTrace, routing.DefaultTraceCapacity)
		if err != nil {
			return nil, err
		}
		pol.SetDecisionTrace(tr)
		if sp != nil {
			sp.SetDecisionTrace(tr)
		}
		s.decisions = tr
	}
	if cfg.telemetry != nil {
		col, err := telemetry.NewCollector(fab, *cfg.telemetry)
		if err != nil {
			return nil, err
		}
		col.Start(DefaultHorizon)
		s.collector = col
	}
	if cfg.noise != nil {
		spec := *cfg.noise
		s.pendingNoise = &spec
	}
	return s, nil
}

// MustNew is like New but panics on error. Intended for examples and tests
// with known-good options.
func MustNew(opts ...Option) *System {
	s, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Reset rewinds the system to the state New would have produced with the same
// options and the given seed, without re-deriving the topology or the routing
// tables: the event engine drops all pending events and restarts its clock
// and random stream, the fabric rewinds link/NIC state and counters, jobs and
// background noise are forgotten, and a WithNoise spec is re-armed for the
// next allocation. A reset system is byte-identical in behaviour to a freshly
// built one — the trial harness relies on this to run sweeps of thousands of
// trials over one constructed machine.
//
// Jobs allocated before the Reset must not be used afterwards.
func (s *System) Reset(seed int64) error {
	s.cfg.seed = seed
	s.epoch++
	s.engine.Reset(seed)
	s.fabric.Reset()
	s.rng.Seed(seed)
	clear(s.used)
	if s.decisions != nil {
		s.decisions.Reset()
	}
	s.noiseGens = s.noiseGens[:0]
	s.pendingNoise = nil
	if s.cfg.noise != nil {
		spec := *s.cfg.noise
		s.pendingNoise = &spec
	}
	if s.cfg.telemetry != nil {
		col, err := telemetry.NewCollector(s.fabric, *s.cfg.telemetry)
		if err != nil {
			return err
		}
		col.Start(DefaultHorizon)
		s.collector = col
	}
	return nil
}

// Topology returns the underlying topology (read-only escape hatch).
func (s *System) Topology() *topo.Topology { return s.topo }

// Engine returns the discrete-event engine. Use it to drive simulations that
// do not go through Job.Run (for example the batch scheduler): schedule work,
// then call Engine().Run() to drain the event queue.
func (s *System) Engine() *sim.Engine { return s.engine }

// Fabric returns the simulated network, for subsystems that attach to it
// directly (telemetry collectors, message logs, the batch scheduler).
func (s *System) Fabric() *network.Fabric { return s.fabric }

// Shards returns the effective shard count of the intra-run parallel engine:
// 1 for a serial system (the default, single-group geometries, or
// WithShards(1)), otherwise the resolved WithShards request.
func (s *System) Shards() int {
	if s.sharded == nil {
		return 1
	}
	return s.sharded.Shards()
}

// RoutingVariant returns the UGAL variant the system was built with
// (ExactUGAL unless WithRoutingVariant said otherwise).
func (s *System) RoutingVariant() RoutingVariant { return s.cfg.variant }

// ReplicaStaleness returns the ShardableUGAL replica-sync decimation factor
// K the system was built with (WithReplicaStaleness; 1 unless overridden,
// and always 1 under ExactUGAL).
func (s *System) ReplicaStaleness() int {
	if s.cfg.staleness < 1 {
		return 1
	}
	return s.cfg.staleness
}

// Sharded returns the group-sharded engine driver, or nil for a serial
// system. It is an escape hatch like Engine and Fabric: harnesses read its
// window/cross-post statistics, and conforming-parallel workloads schedule
// through it.
func (s *System) Sharded() *sim.Sharded { return s.sharded }

// Rand returns the system's allocation random stream. The trial harness
// exposes it so trial bodies draw from the same deterministic stream the
// facade uses for placement.
func (s *System) Rand() *rand.Rand { return s.rng }

// Seed returns the seed the system was built from.
func (s *System) Seed() int64 { return s.cfg.seed }

// Now returns the current simulated time.
func (s *System) Now() sim.Time { return s.engine.Now() }

// Telemetry returns the collector installed by WithTelemetry, or nil. The
// collector is already started; call Stop and Flush on it before reading.
func (s *System) Telemetry() *telemetry.Collector { return s.collector }

// DecisionTrace returns the routing decision recorder installed by
// WithDecisionTrace, or nil when tracing is off. Reset clears it along with
// the rest of the system state.
func (s *System) DecisionTrace() *DecisionTrace { return s.decisions }

// FreeNodes returns the number of nodes not yet handed to a job or a noise
// generator.
func (s *System) FreeNodes() int { return s.topo.NumNodes() - len(s.used) }

// MachineCounters sums the NIC counters of every node of the machine.
func (s *System) MachineCounters() Counters {
	var total Counters
	for n := 0; n < s.topo.NumNodes(); n++ {
		total.Add(s.fabric.NodeCounters(topo.NodeID(n)))
	}
	return total
}

// Allocate places an n-node job with the given policy on free nodes. Unlike
// the historical harness helper, it never clamps: a job larger than the free
// nodes fails with an error wrapping ErrJobTooLarge.
func (s *System) Allocate(policy Policy, n int) (*Job, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dragonfly: job size must be positive, got %d", n)
	}
	if free := s.FreeNodes(); n > free {
		return nil, fmt.Errorf("%w: requested %d nodes, %d free of %d",
			ErrJobTooLarge, n, free, s.topo.NumNodes())
	}
	a, err := alloc.Allocate(s.topo, policy, n, s.rng, s.used)
	if err != nil {
		return nil, err
	}
	return s.adopt(a), nil
}

// AllocatePair returns a two-node job of the given topological class (the
// paper's inter-nodes / inter-blades / inter-chassis / inter-groups cases).
// The pair nodes are picked deterministically from the topology, so the call
// fails when a previous allocation already occupies them.
func (s *System) AllocatePair(class AllocationClass) (*Job, error) {
	a, b, err := alloc.PairForClass(s.topo, class)
	if err != nil {
		return nil, err
	}
	for _, n := range []topo.NodeID{a, b} {
		if s.used[n] {
			return nil, fmt.Errorf("dragonfly: pair node %d for class %s is already allocated", n, class)
		}
	}
	return s.adopt(alloc.NewAllocation(s.topo, []topo.NodeID{a, b})), nil
}

// JobFromNodes pins a job to explicit nodes (repeats allowed: several ranks
// on one node). It is the escape hatch for externally-decided placements: the
// nodes are registered as used like any other allocation, but — unlike
// Allocate and AllocatePair — no disjointness check is made against earlier
// jobs, because the caller owns the placement.
func (s *System) JobFromNodes(nodes []NodeID) *Job {
	return s.adopt(alloc.NewAllocation(s.topo, nodes))
}

// adopt registers an allocation's nodes as used, wraps it in a Job and starts
// the WithNoise background job on the first allocation.
func (s *System) adopt(a *alloc.Allocation) *Job {
	for _, n := range a.Nodes() {
		s.used[n] = true
	}
	j := &Job{sys: s, alloc: a, epoch: s.epoch}
	if s.pendingNoise != nil {
		spec := *s.pendingNoise
		s.pendingNoise = nil
		s.StartNoise(spec)
	}
	return j
}

// NoiseConfig declares a background (interfering) job. All values are
// concrete; the generator seed is derived from the system seed and the
// pattern, so equal systems produce equal noise.
type NoiseConfig struct {
	// Pattern is the traffic pattern of the background job.
	Pattern NoisePattern
	// Nodes is the requested size of the background job; it is capped to the
	// free nodes of the machine, and no job is started when fewer than two
	// nodes remain.
	Nodes int
	// IntervalCycles overrides the mean inter-message gap when > 0.
	IntervalCycles int64
	// MessageBytes overrides the background message size when > 0.
	MessageBytes int64
}

// StartNoise places a background job on nodes disjoint from every allocation
// made through the system and starts it until DefaultHorizon. Placements
// decided outside the system must be registered first (JobFromNodes) so the
// noise avoids them. The requested size is capped to the free nodes; it
// returns nil when fewer than two nodes remain — small test topologies — or
// when placement fails; background noise is best-effort by design. Callers
// that consider an undersized background job an error should check
// FreeNodes() up front (cmd/dragonsim does).
func (s *System) StartNoise(cfg NoiseConfig) *noise.Generator {
	n := cfg.Nodes
	if free := s.FreeNodes(); n > free {
		n = free
	}
	if n < 2 {
		return nil
	}
	a, err := alloc.Allocate(s.topo, alloc.RandomScatter, n, s.rng, s.used)
	if err != nil {
		return nil
	}
	gcfg := noise.DefaultGeneratorConfig()
	gcfg.Pattern = cfg.Pattern
	if cfg.IntervalCycles > 0 {
		gcfg.IntervalCycles = cfg.IntervalCycles
	}
	if cfg.MessageBytes > 0 {
		gcfg.MessageBytes = cfg.MessageBytes
	}
	// The first generator of a pattern derives its seed exactly as the trial
	// harness historically did (preserving byte-identical experiment output);
	// later generators fold in their index so same-pattern background jobs
	// draw independent streams instead of moving in lockstep.
	seed := mix64(uint64(s.cfg.seed)) ^ uint64(cfg.Pattern)
	if idx := len(s.noiseGens); idx > 0 {
		seed = mix64(seed ^ uint64(idx))
	}
	gcfg.Seed = int64(seed)
	g, err := noise.FromAllocation(s.fabric, a, gcfg)
	if err != nil {
		return nil
	}
	for _, node := range a.Nodes() {
		s.used[node] = true
	}
	g.Start(DefaultHorizon)
	s.noiseGens = append(s.noiseGens, g)
	return g
}

// NoiseGenerators returns the background generators started on this system.
func (s *System) NoiseGenerators() []*noise.Generator { return s.noiseGens }

// mix64 is the splitmix64 finalizer, the same bijective avalanche the trial
// harness uses for seed derivation, so a System built by the harness derives
// the exact same noise seeds the harness historically did.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
