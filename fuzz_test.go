package dragonfly_test

import (
	"fmt"
	"strings"
	"testing"

	"dragonfly"
)

// FuzzParseRouting fuzzes the routing-configuration parser: it must never
// panic, and every accepted input must yield a usable configuration (a name
// and a provider factory that builds per-rank providers).
func FuzzParseRouting(f *testing.F) {
	for _, seed := range []string{
		"default", "appaware", "ADAPTIVE_0", "ADAPTIVE_1", "ADAPTIVE_2", "ADAPTIVE_3",
		"MIN_HASH", "NMIN_HASH", "IN_ORDER", "adaptive", "high-bias", "low-bias", "imb",
		"", "bogus", "ADAPTIVE_9", "Default", "APPAWARE", "adaptive_0", " default",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := dragonfly.ParseRouting(s)
		if err != nil {
			if r.Provider != nil || r.Name != "" {
				t.Fatalf("ParseRouting(%q) errored but returned a non-zero Routing %+v", s, r)
			}
			return
		}
		if r.Name == "" {
			t.Fatalf("ParseRouting(%q) accepted with an empty name", s)
		}
		if r.Provider == nil {
			t.Fatalf("ParseRouting(%q) accepted with a nil provider factory", s)
		}
		if p := r.Provider(0); p == nil {
			t.Fatalf("ParseRouting(%q): provider factory built a nil provider", s)
		}
	})
}

// FuzzParseShards fuzzes the shard-count parser: no panics, every accepted
// input maps to a valid WithShards argument (0 = auto or a positive count),
// and acceptance is stable under the documented normalization.
func FuzzParseShards(f *testing.F) {
	for _, seed := range []string{
		"", "auto", "AUTO", " auto ", "1", "2", "4", "8", "16", "64",
		"0", "-1", "-8", "four", "4.5", "1e3", "0x4", "+3", " 2 ",
		"auto:2", "99999999999999999999", "∞",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := dragonfly.ParseShards(s)
		if err != nil {
			if n != 0 {
				t.Fatalf("ParseShards(%q) errored but returned %d", s, n)
			}
			return
		}
		if n < 0 {
			t.Fatalf("ParseShards(%q) accepted a negative count %d", s, n)
		}
		if opt := dragonfly.WithShards(n); opt == nil {
			t.Fatalf("ParseShards(%q) = %d does not build a WithShards option", s, n)
		}
		if n2, err := dragonfly.ParseShards(strings.ToUpper(" " + s + " ")); err != nil || n2 != n {
			t.Fatalf("ParseShards(%q) is not normalization-stable: %v / %d", s, err, n2)
		}
	})
}

// FuzzParseRoutingVariant fuzzes the UGAL-variant parser: no panics, every
// accepted input maps to one of the two defined variants, acceptance is
// stable under the documented normalization (case, surrounding spaces), and
// the parser round-trips both canonical String() spellings.
func FuzzParseRoutingVariant(f *testing.F) {
	for _, seed := range []string{
		"", "exact", "ugal", "serial", "shardable", "sharded", "parallel",
		"EXACT", "Shardable", " shardable ", "SHARDED", "Parallel",
		"exactly", "shard", "fast", "ugal2", "shardable:4", "exact ugal", "∞",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := dragonfly.ParseRoutingVariant(s)
		if err != nil {
			if v != dragonfly.ExactUGAL {
				t.Fatalf("ParseRoutingVariant(%q) errored but returned %v", s, v)
			}
			return
		}
		if v != dragonfly.ExactUGAL && v != dragonfly.ShardableUGAL {
			t.Fatalf("ParseRoutingVariant(%q) accepted an undefined variant %d", s, v)
		}
		if v2, err := dragonfly.ParseRoutingVariant(strings.ToUpper(" " + s + " ")); err != nil || v2 != v {
			t.Fatalf("ParseRoutingVariant(%q) is not normalization-stable: %v / %v", s, err, v2)
		}
		// The canonical spelling must parse back to the same variant, so
		// String() output is always a valid -routing-variant value.
		if v3, err := dragonfly.ParseRoutingVariant(v.String()); err != nil || v3 != v {
			t.Fatalf("ParseRoutingVariant(%q).String() = %q does not round-trip: %v / %v",
				s, v.String(), err, v3)
		}
	})
}

// FuzzParseStaleness fuzzes the replica-staleness parser: no panics, every
// accepted input is a usable WithReplicaStaleness argument in [1, 4096],
// acceptance is stable under the documented normalization, and every accepted
// K round-trips through the routing-variant suffix grammar
// ("shardable:staleness=K").
func FuzzParseStaleness(f *testing.F) {
	for _, seed := range []string{
		"", "1", "2", "4", "16", "4096", "staleness=2", "STALENESS=4",
		" staleness=8 ", "0", "-1", "4097", "3.5", "two", "k=4", "0x10",
		"staleness=", "staleness=0", "staleness=staleness=2", "+2", " 2 ",
		"99999999999999999999", "∞",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		k, err := dragonfly.ParseStaleness(s)
		if err != nil {
			if k != 0 {
				t.Fatalf("ParseStaleness(%q) errored but returned %d", s, k)
			}
			return
		}
		if k < 1 || k > 4096 {
			t.Fatalf("ParseStaleness(%q) accepted an out-of-range factor %d", s, k)
		}
		if opt := dragonfly.WithReplicaStaleness(k); opt == nil {
			t.Fatalf("ParseStaleness(%q) = %d does not build a WithReplicaStaleness option", s, k)
		}
		if k2, err := dragonfly.ParseStaleness(strings.ToUpper(" " + s + " ")); err != nil || k2 != k {
			t.Fatalf("ParseStaleness(%q) is not normalization-stable: %v / %d", s, err, k2)
		}
		// Every accepted K must round-trip through the -routing-variant
		// suffix spelling, so the two grammars can never drift apart.
		v, k3, err := dragonfly.ParseRoutingVariantSpec(fmt.Sprintf("shardable:staleness=%d", k))
		if err != nil || v != dragonfly.ShardableUGAL || k3 != k {
			t.Fatalf("ParseStaleness(%q) = %d does not round-trip the variant suffix: %v, %v, %d",
				s, k, v, err, k3)
		}
	})
}

// FuzzParseDecisionTrace fuzzes the decision-trace flag parser: no panics,
// errors return the zero value, every accepted k is in [0, 8], every accepted
// k >= 1 is a usable WithDecisionTrace argument, and acceptance is stable
// under the documented normalization (case, surrounding whitespace).
func FuzzParseDecisionTrace(f *testing.F) {
	for _, seed := range []string{
		"", "off", "OFF", "on", "On", "0", "1", "4", "8", "k=4", "K=2",
		" k=8 ", "k=0", "9", "-1", "k=", "k=9", "two", "4.5", "0x4", "on=4",
		"k=k=4", "+4", "99999999999999999999", "∞",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		k, err := dragonfly.ParseDecisionTrace(s)
		if err != nil {
			if k != 0 {
				t.Fatalf("ParseDecisionTrace(%q) errored but returned %d", s, k)
			}
			return
		}
		if k < 0 || k > 8 {
			t.Fatalf("ParseDecisionTrace(%q) accepted an out-of-range depth %d", s, k)
		}
		if k >= 1 {
			if opt := dragonfly.WithDecisionTrace(k); opt == nil {
				t.Fatalf("ParseDecisionTrace(%q) = %d does not build a WithDecisionTrace option", s, k)
			}
		}
		if k2, err := dragonfly.ParseDecisionTrace(strings.ToUpper(" " + s + " ")); err != nil || k2 != k {
			t.Fatalf("ParseDecisionTrace(%q) is not normalization-stable: %v / %d", s, err, k2)
		}
	})
}

// FuzzParseArrival fuzzes the open-arrival spec parser: no panics, every
// accepted input must come back as a validated spec whose streams can be
// built, and acceptance must be stable under the documented normalization.
func FuzzParseArrival(f *testing.F) {
	for _, seed := range []string{
		"latency:poisson:150000",
		"latency:poisson:150000:nodes=2-8;batch:gamma:600000:shape=2:nodes=8-64",
		"besteffort:weibull:300000:diurnal=0.5:period=10000000:phase=0.25",
		"batch:gamma:50000:shape=0.5:dur=1000-90000:name=etl",
		"LATENCY:POISSON:1000", " latency : exp : 42 ", "be:weibull:77:shape=1.5",
		"", ";", "latency", "latency:poisson", "latency:poisson:0",
		"latency:zipf:100", "gold:poisson:100", "latency:poisson:100:bogus=1",
		"latency:poisson:100:nodes=8-2", "latency:poisson:100:shape=-1",
		"latency:poisson:100:diurnal=2", "latency:poisson:99999999999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := dragonfly.ParseArrival(s)
		if err != nil {
			if len(spec.Clients) != 0 {
				t.Fatalf("ParseArrival(%q) errored but returned clients %+v", s, spec.Clients)
			}
			return
		}
		if len(spec.Clients) == 0 {
			t.Fatalf("ParseArrival(%q) accepted an empty spec", s)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseArrival(%q) accepted an invalid spec: %v", s, err)
		}
		for _, c := range spec.Clients {
			if c.MeanInterarrivalCycles <= 0 || c.MinNodes < 1 || c.MaxNodes < c.MinNodes {
				t.Fatalf("ParseArrival(%q) accepted a degenerate client %+v", s, c)
			}
		}
		if spec2, err := dragonfly.ParseArrival(strings.ToUpper(" " + s + " ")); err != nil ||
			len(spec2.Clients) != len(spec.Clients) {
			t.Fatalf("ParseArrival(%q) is not normalization-stable: %v / %d clients",
				s, err, len(spec2.Clients))
		}
	})
}

// FuzzParseGeometry fuzzes the geometry-preset parser: no panics, and every
// accepted input must come back as a validated, buildable machine shape.
func FuzzParseGeometry(f *testing.F) {
	for _, seed := range []string{
		"small", "medium", "large", "daint", "Small", "DAINT",
		"small:1", "small:8", "medium:12", "aries:2", "aries:64",
		"", "aries", "small:", "small:0", "small:-3", "small:1e9", "tiny",
		"large:2", "daint:14", "small:999999999999999999999", ":", "::", "a:b:c",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		g, err := dragonfly.ParseGeometry(s)
		if err != nil {
			if g != (dragonfly.Geometry{}) {
				t.Fatalf("ParseGeometry(%q) errored but returned a non-zero geometry %+v", s, g)
			}
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("ParseGeometry(%q) accepted an invalid geometry: %v", s, err)
		}
		if g.Nodes() <= 0 || g.Routers() <= 0 {
			t.Fatalf("ParseGeometry(%q) accepted an empty machine: %+v", s, g)
		}
		// Accepted names must be stable under the documented normalization
		// (case and surrounding spaces), or CLI flags become inconsistent.
		if g2, err := dragonfly.ParseGeometry(strings.ToUpper(s)); err != nil || g2 != g {
			t.Fatalf("ParseGeometry(%q) is case-sensitive: %v / %+v", s, err, g2)
		}
	})
}
