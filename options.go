package dragonfly

import (
	"fmt"

	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/topo"
)

// config is the resolved set of options a System is built from.
type config struct {
	geometry  Geometry
	routing   RoutingParams
	network   NetworkConfig
	seed      int64
	noise     *NoiseConfig
	telemetry *TelemetryConfig
}

// defaultConfig mirrors the library defaults every consumer used to spell out
// by hand.
func defaultConfig() config {
	return config{
		geometry: topo.SmallConfig(4),
		routing:  routing.DefaultParams(),
		network:  network.DefaultConfig(),
		seed:     1,
	}
}

// Option configures a System under construction.
type Option func(*config) error

// WithGeometry selects the Dragonfly geometry (groups, chassis, blades,
// nodes, link widths). See SmallGeometry, MediumGeometry and AriesGeometry
// for the standard shapes.
func WithGeometry(g Geometry) Option {
	return func(c *config) error {
		if err := g.Validate(); err != nil {
			return err
		}
		c.geometry = g
		return nil
	}
}

// WithRouting overrides the UGAL routing parameters (candidate counts and the
// per-mode bias levels).
func WithRouting(p RoutingParams) Option {
	return func(c *config) error {
		if err := p.Validate(); err != nil {
			return err
		}
		c.routing = p
		return nil
	}
}

// WithNetworkConfig overrides the fabric configuration (link bandwidths,
// buffering, credit delays, packetization).
func WithNetworkConfig(n NetworkConfig) Option {
	return func(c *config) error {
		if err := n.Validate(); err != nil {
			return err
		}
		c.network = n
		return nil
	}
}

// WithSeed sets the seed every random stream of the system derives from: the
// event engine, the allocation RNG and the background-noise generators.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithNoise declares a background interfering job. It is started when the
// first job is allocated, on nodes disjoint from that job, exactly like an
// explicit System.StartNoise call at that point. The generator is a
// fixed-rate synthetic stand-in; to measure against *real* co-running
// applications, allocate neighbor jobs and run everything through
// System.RunConcurrent instead.
func WithNoise(cfg NoiseConfig) Option {
	return func(c *config) error {
		if cfg.Nodes < 2 {
			return fmt.Errorf("dragonfly: WithNoise needs at least 2 nodes, got %d", cfg.Nodes)
		}
		spec := cfg
		c.noise = &spec
		return nil
	}
}

// WithTelemetry installs a fabric-wide telemetry collector, started at
// construction; read it back with System.Telemetry.
func WithTelemetry(cfg TelemetryConfig) Option {
	return func(c *config) error {
		spec := cfg
		c.telemetry = &spec
		return nil
	}
}
