package dragonfly

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/topo"
)

// The geometry ladder: four standard machine shapes spanning unit-test scale
// to a full Piz-Daint-class system, each roughly an order of magnitude bigger
// than the previous rung. Pass a rung straight to WithGeometry:
//
//	sys, err := dragonfly.New(dragonfly.WithGeometry(dragonfly.Daint))
//
// The values are package variables only so they can be spelled without
// parentheses; treat them as read-only.
var (
	// Small is the unit-test rung: 4 reduced groups, 64 nodes.
	Small = SmallGeometry(4)
	// Medium is the CLI-default rung: 6 widened groups, 192 nodes.
	Medium = MediumGeometry(6)
	// Large is the paper's Piz Daint allocation of Figure 8: 6 full Aries
	// groups, 576 routers, 2304 nodes.
	Large = AriesGeometry(6)
	// Daint is the machine-scale rung, sized like the full Piz Daint system:
	// 14 full Aries groups, 1344 routers, 5376 nodes. The compact
	// topology/link-state arenas exist so this rung simulates on a laptop.
	Daint = AriesGeometry(14)
)

// GeometryRung names one rung of the geometry ladder.
type GeometryRung struct {
	// Name is the rung's ladder name ("small" ... "daint").
	Name string
	// Geometry is the machine shape of the rung.
	Geometry Geometry
}

// GeometryLadder returns the standard rungs in ascending size order. The
// slice is freshly allocated; callers may reorder or truncate it.
func GeometryLadder() []GeometryRung {
	return []GeometryRung{
		{Name: "small", Geometry: Small},
		{Name: "medium", Geometry: Medium},
		{Name: "large", Geometry: Large},
		{Name: "daint", Geometry: Daint},
	}
}

// ParseGeometry maps a command-line geometry name to a machine shape: a
// ladder rung ("small", "medium", "large", "daint"), or a parameterized
// preset with an explicit group count — "small:N", "medium:N", "aries:N".
// Names are case-insensitive.
func ParseGeometry(s string) (Geometry, error) {
	name, suffix, hasGroups := strings.Cut(strings.ToLower(strings.TrimSpace(s)), ":")
	groups := 0
	if hasGroups {
		n, err := strconv.Atoi(suffix)
		if err != nil || n < 1 {
			return Geometry{}, fmt.Errorf("dragonfly: bad group count %q in geometry %q", suffix, s)
		}
		groups = n
	}
	var g Geometry
	switch name {
	case "small":
		if !hasGroups {
			groups = Small.Groups
		}
		g = SmallGeometry(groups)
	case "medium":
		if !hasGroups {
			groups = Medium.Groups
		}
		g = MediumGeometry(groups)
	case "aries":
		if !hasGroups {
			return Geometry{}, fmt.Errorf("dragonfly: geometry %q needs a group count (aries:N)", s)
		}
		g = AriesGeometry(groups)
	case "large", "daint":
		if hasGroups {
			return Geometry{}, fmt.Errorf("dragonfly: ladder rung %q takes no group count (use aries:N)", name)
		}
		if name == "large" {
			g = Large
		} else {
			g = Daint
		}
	default:
		return Geometry{}, fmt.Errorf("dragonfly: unknown geometry %q (want small, medium, large, daint, small:N, medium:N or aries:N)", s)
	}
	if err := g.Validate(); err != nil {
		return Geometry{}, err
	}
	return g, nil
}

// config is the resolved set of options a System is built from.
type config struct {
	geometry      Geometry
	routing       RoutingParams
	network       NetworkConfig
	seed          int64
	shards        int
	variant       RoutingVariant
	staleness     int
	decisionTrace int
	noise         *NoiseConfig
	telemetry     *TelemetryConfig
}

// defaultConfig mirrors the library defaults every consumer used to spell out
// by hand.
func defaultConfig() config {
	return config{
		geometry:  topo.SmallConfig(4),
		routing:   routing.DefaultParams(),
		network:   network.DefaultConfig(),
		seed:      1,
		shards:    1,
		staleness: 1,
	}
}

// Option configures a System under construction.
type Option func(*config) error

// WithGeometry selects the Dragonfly geometry (groups, chassis, blades,
// nodes, link widths). See SmallGeometry, MediumGeometry and AriesGeometry
// for the standard shapes.
func WithGeometry(g Geometry) Option {
	return func(c *config) error {
		if err := g.Validate(); err != nil {
			return err
		}
		c.geometry = g
		return nil
	}
}

// WithRouting overrides the UGAL routing parameters (candidate counts and the
// per-mode bias levels).
func WithRouting(p RoutingParams) Option {
	return func(c *config) error {
		if err := p.Validate(); err != nil {
			return err
		}
		c.routing = p
		return nil
	}
}

// WithNetworkConfig overrides the fabric configuration (link bandwidths,
// buffering, credit delays, packetization).
func WithNetworkConfig(n NetworkConfig) Option {
	return func(c *config) error {
		if err := n.Validate(); err != nil {
			return err
		}
		c.network = n
		return nil
	}
}

// WithSeed sets the seed every random stream of the system derives from: the
// event engine, the allocation RNG and the background-noise generators.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithShards enables the intra-run parallel event engine: the machine is
// partitioned by dragonfly group into n shards with their own event heaps,
// advanced together in conservative lookahead windows (the minimum global-link
// latency bounds how far any shard can run ahead). Output is byte-identical
// to the serial engine at every shard count — same seed, same counters, same
// telemetry stream — so sharding is purely a wall-clock knob.
//
// n = 0 selects automatic sizing (GOMAXPROCS). Whatever is requested is
// clamped to the number of dragonfly groups, and single-group geometries fall
// back to the serial engine (there is no cross-group lookahead to exploit).
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("dragonfly: WithShards needs n >= 0 (0 = auto), got %d", n)
		}
		c.shards = n
		return nil
	}
}

// WithRoutingVariant selects the UGAL state-partitioning variant.
//
// The default ExactUGAL is the paper's algorithm: every packet draws its
// candidate paths from one shared random stream and costs them against an
// instantaneous machine-global congestion view, so packet execution is
// order-serial (sharded systems keep it in the serial domain and stay
// byte-identical to the serial engine).
//
// ShardableUGAL relaxes exactly those two couplings — one deterministic RNG
// stream per dragonfly group, and per-group congestion replicas refreshed
// every K lookahead windows (K = WithReplicaStaleness, default 1, so the
// staleness is bounded by K times the minimum global-link latency) — which
// moves packet execution into the conforming-parallel
// class of the sharded engine. Its output is deterministic and
// byte-identical across shard counts and drive modes, but differs from
// ExactUGAL by construction: it is a different, equally pinned model, not
// an approximation knob. ShardableUGAL always runs on the sharded driver
// (even when the resolved shard count is 1, so shard count never changes
// the byte stream) and therefore requires a multi-group geometry.
func WithRoutingVariant(v RoutingVariant) Option {
	return func(c *config) error {
		switch v {
		case ExactUGAL, ShardableUGAL:
			c.variant = v
			return nil
		default:
			return fmt.Errorf("dragonfly: unknown routing variant %v", v)
		}
	}
}

// WithReplicaStaleness sets the ShardableUGAL replica-sync decimation factor
// K: the per-group congestion replicas are refreshed every K × lookahead
// cycles instead of at every lookahead boundary. K=1 (the default) is
// byte-identical to the classic per-boundary sync; larger K trades
// congestion-view freshness for fewer serial sync events and longer
// effective parallel stretches. Every K is its own deterministic model —
// output stays byte-identical across shard counts and drive modes for a
// fixed K, and the `fidelity` experiment measures the K ∈ {1,2,4} trade
// against ExactUGAL. The knob requires WithRoutingVariant(ShardableUGAL)
// when K > 1; ExactUGAL has no replicas to grow stale.
func WithReplicaStaleness(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("dragonfly: WithReplicaStaleness needs k >= 1, got %d", k)
		}
		if k > routing.MaxStaleness {
			return fmt.Errorf("dragonfly: WithReplicaStaleness %d exceeds the maximum %d", k, routing.MaxStaleness)
		}
		c.staleness = k
		return nil
	}
}

// WithDecisionTrace enables the routing decision recorder: every adaptive
// routing decision is captured with its top-k candidate paths and their
// congestion costs at decision time, into one preallocated ring per dragonfly
// group (so sharded runs stay deterministic and recording never allocates).
// Read the trace back with System.DecisionTrace and score it with the
// counterfactual package. Tracing observes the selection — it never changes
// which path is routed — and is off by default; the disabled cost is one nil
// check per routed packet.
func WithDecisionTrace(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("dragonfly: WithDecisionTrace needs k >= 1, got %d", k)
		}
		if k > routing.MaxDecisionCandidates {
			return fmt.Errorf("dragonfly: WithDecisionTrace %d exceeds the maximum %d", k, routing.MaxDecisionCandidates)
		}
		c.decisionTrace = k
		return nil
	}
}

// ParseDecisionTrace maps a command-line -decision-trace flag to a
// WithDecisionTrace argument: "", "off" and "0" disable tracing (return 0),
// "on" selects the default k, otherwise "N" or "k=N".
func ParseDecisionTrace(s string) (int, error) {
	return routing.ParseDecisionTrace(s)
}

// ParseStaleness maps a command-line -staleness flag to a
// WithReplicaStaleness argument: the empty string means the default K=1,
// otherwise a positive integer, optionally spelled "staleness=K".
func ParseStaleness(s string) (int, error) {
	return routing.ParseStaleness(s)
}

// ParseShards maps a command-line shard-count flag to a WithShards argument:
// "auto" (or the empty string) selects automatic sizing, otherwise a positive
// integer. Names are case-insensitive.
func ParseShards(s string) (int, error) {
	v := strings.ToLower(strings.TrimSpace(s))
	if v == "" || v == "auto" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("dragonfly: bad shard count %q (want auto or a positive integer)", s)
	}
	return n, nil
}

// resolveShards turns the configured shard request into the effective shard
// count for a machine with the given number of groups and lookahead bound.
func resolveShards(requested, groups int, lookahead int64) int {
	if requested == 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	if requested > groups {
		requested = groups
	}
	if groups < 2 || lookahead <= 0 {
		return 1
	}
	if requested < 1 {
		return 1
	}
	return requested
}

// WithNoise declares a background interfering job. It is started when the
// first job is allocated, on nodes disjoint from that job, exactly like an
// explicit System.StartNoise call at that point. The generator is a
// fixed-rate synthetic stand-in; to measure against *real* co-running
// applications, allocate neighbor jobs and run everything through
// System.RunConcurrent instead.
func WithNoise(cfg NoiseConfig) Option {
	return func(c *config) error {
		if cfg.Nodes < 2 {
			return fmt.Errorf("dragonfly: WithNoise needs at least 2 nodes, got %d", cfg.Nodes)
		}
		spec := cfg
		c.noise = &spec
		return nil
	}
}

// WithTelemetry installs a fabric-wide telemetry collector, started at
// construction; read it back with System.Telemetry.
func WithTelemetry(cfg TelemetryConfig) Option {
	return func(c *config) error {
		spec := cfg
		c.telemetry = &spec
		return nil
	}
}
