// Package dragonfly contains the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (plus the model
// validation and the selector ablations). Each benchmark regenerates the
// corresponding result table through the experiments package and reports,
// besides the usual ns/op, the headline metric of that experiment as a custom
// benchmark metric so that `go test -bench` output can be compared against
// EXPERIMENTS.md.
//
// The benchmarks run at the reduced "quick" scale so the whole harness
// completes in a couple of minutes; use cmd/experiments with -nodes,
// -size-scale and -full-aries to run at larger scales.
package dragonfly_test

import (
	"fmt"
	"runtime"
	"strconv"
	"testing"

	"dragonfly"
	"dragonfly/internal/arrival"
	"dragonfly/internal/experiments"
	"dragonfly/internal/sched"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// benchOptions returns the option set used by the benchmark harness.
func benchOptions() experiments.Options {
	o := experiments.QuickOptions()
	o.Iterations = 8
	return o
}

// runExperiment executes one experiment once per benchmark iteration and
// returns the tables of the last run.
func runExperiment(b *testing.B, id string) []*trace.Table {
	b.Helper()
	var tables []*trace.Table
	var err error
	for i := 0; i < b.N; i++ {
		tables, err = experiments.Run(id, benchOptions())
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
	return tables
}

// cellMetric extracts a numeric cell and reports it as a benchmark metric.
func cellMetric(b *testing.B, t *trace.Table, row, col int, name string) {
	b.Helper()
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		return
	}
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		return
	}
	b.ReportMetric(v, name)
}

// suiteIDs is the multi-experiment suite used by the serial-vs-parallel
// executor benchmarks: enough independent trials to keep every core busy.
var suiteIDs = []string{"fig3", "fig4", "fig7", "noisesweep", "baselines", "collalgos", "biassweep"}

// runSuite executes the benchmark suite with the given harness worker count.
func runSuite(b *testing.B, parallel int) {
	b.Helper()
	o := benchOptions()
	o.Parallel = parallel
	for i := 0; i < b.N; i++ {
		for _, id := range suiteIDs {
			if _, err := experiments.Run(id, o); err != nil {
				b.Fatalf("experiment %s: %v", id, err)
			}
		}
	}
}

// BenchmarkSuiteSerial runs the experiment suite with a single harness
// worker — the baseline the parallel executor is measured against.
func BenchmarkSuiteSerial(b *testing.B) {
	runSuite(b, 1)
}

// BenchmarkSuiteParallel runs the same suite with one worker per core; the
// tables produced are byte-identical to the serial run, only faster. Compare
// ns/op against BenchmarkSuiteSerial for the executor speedup.
func BenchmarkSuiteParallel(b *testing.B) {
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	runSuite(b, 0)
}

// BenchmarkConcurrentJobs drives the concurrent multi-job path: an alltoall
// victim and a halo3d neighbor co-run through System.RunConcurrent on one
// reused (Reset) system per iteration. It reports the victim's simulated
// time under co-tenancy as a custom metric; compare against the experiments
// in EXPERIMENTS.md "Co-tenancy methodology".
func BenchmarkConcurrentJobs(b *testing.B) {
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.SmallGeometry(4)),
		dragonfly.WithSeed(1),
	)
	if err != nil {
		b.Fatal(err)
	}
	var victimTime float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Reset(1); err != nil {
			b.Fatal(err)
		}
		victim, err := sys.Allocate(dragonfly.GroupStriped, 16)
		if err != nil {
			b.Fatal(err)
		}
		neighbor, err := sys.Allocate(dragonfly.GroupStriped, 16)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := sys.RunConcurrent([]dragonfly.JobRun{
			{
				Job:      victim,
				Workload: &workloads.Alltoall{MessageBytes: 4 << 10, Iterations: 1},
				Options:  dragonfly.RunOptions{Iterations: 4},
			},
			{
				Job:      neighbor,
				Workload: workloads.NewHalo3D(16, 256, 2),
				Options:  dragonfly.RunOptions{Iterations: 2},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		victimTime = float64(rs[0].Time())
	}
	b.ReportMetric(victimTime, "victim_cycles")
}

// BenchmarkCoTenantNeighbors regenerates the co-tenancy extension: the
// alltoall victim next to synthetic vs. real neighbor jobs per routing
// configuration.
func BenchmarkCoTenantNeighbors(b *testing.B) {
	tables := runExperiment(b, "cotenant")
	// Rows per routing: alone, noise, halo3d. Column 3 is "vs alone".
	if len(tables[0].Rows) >= 3 {
		cellMetric(b, tables[0], 1, 3, "default_noise_vs_alone")
		cellMetric(b, tables[0], 2, 3, "default_halo3d_vs_alone")
	}
}

// BenchmarkFig3AllocationPingPong regenerates Figure 3: ping-pong latency
// distributions across allocation classes. Reported metrics: the median cycles
// of the closest (inter-node) and farthest (inter-group) allocations.
func BenchmarkFig3AllocationPingPong(b *testing.B) {
	tables := runExperiment(b, "fig3")
	cellMetric(b, tables[0], 0, 1, "internode_median_cycles")
	cellMetric(b, tables[0], 3, 1, "intergroup_median_cycles")
}

// BenchmarkTable1IdleFlits regenerates Table 1: the flits an idle job observes
// on its routers for 1x and 2x idle time.
func BenchmarkTable1IdleFlits(b *testing.B) {
	tables := runExperiment(b, "tab1")
	cellMetric(b, tables[0], 0, 2, "flits_1x")
	cellMetric(b, tables[0], 1, 2, "flits_2x")
}

// BenchmarkFig4OnNodeAlltoall regenerates Figure 4: on-node alltoall
// execution-time variability with zero network traffic.
func BenchmarkFig4OnNodeAlltoall(b *testing.B) {
	tables := runExperiment(b, "fig4")
	cellMetric(b, tables[0], 0, 6, "qcd_smallest_size")
	cellMetric(b, tables[0], len(tables[0].Rows)-1, 6, "qcd_largest_size")
}

// BenchmarkFig5QCD regenerates Figure 5: QCD of execution time vs QCD of
// packet latency for the inter-group ping-pong.
func BenchmarkFig5QCD(b *testing.B) {
	tables := runExperiment(b, "fig5")
	cellMetric(b, tables[0], 0, 1, "qcd_time_small")
	cellMetric(b, tables[0], 0, 2, "qcd_latency_small")
}

// BenchmarkFig7RoutingPingPong regenerates Figure 7: the large ping-pong under
// Adaptive vs Adaptive-with-High-Bias, intra- and inter-group.
func BenchmarkFig7RoutingPingPong(b *testing.B) {
	tables := runExperiment(b, "fig7")
	// Rows: 0 intra/adaptive, 1 intra/bias, 2 inter/adaptive, 3 inter/bias.
	cellMetric(b, tables[0], 2, 1, "intergroup_adaptive_median_cycles")
	cellMetric(b, tables[0], 3, 1, "intergroup_highbias_median_cycles")
}

// BenchmarkModelValidation regenerates the §2.4 model validation and reports
// the average Pearson correlation between the Eq. 2 estimate and the measured
// transmission time (the paper reports 0.79).
func BenchmarkModelValidation(b *testing.B) {
	tables := runExperiment(b, "model")
	cellMetric(b, tables[0], len(tables[0].Rows)-1, 1, "avg_correlation")
}

// BenchmarkCounterfactual regenerates the decision-trace experiment: the
// per-group decision recorder, the counterfactual re-biasing replay and the
// Eq. 2 calibration fit, across both UGAL variants. Its allocs/op is gated by
// scripts/bench_smoke.sh: the recorder writes into preallocated rings, so the
// experiment's allocation count must stay O(system build), not O(decisions).
func BenchmarkCounterfactual(b *testing.B) {
	tables := runExperiment(b, "counterfactual")
	// Decisions table rows are (variant, setup) x 4 modes; row 3 is
	// exact/Default scored under Adaptive with High Bias.
	cellMetric(b, tables[0], 3, 6, "highbias_avoided_per_decision")
	// Calibration table row 0 is exact/Default: MAPE % and Pearson r.
	cellMetric(b, tables[1], 0, 5, "calibration_mape_pct")
	cellMetric(b, tables[1], 0, 6, "calibration_pearson_r")
}

// BenchmarkFig8Microbenchmarks regenerates Figure 8 (microbenchmarks,
// Piz Daint style geometry).
func BenchmarkFig8Microbenchmarks(b *testing.B) {
	tables := runExperiment(b, "fig8")
	cellMetric(b, tables[0], 0, 6, "appaware_norm_median_row0")
}

// BenchmarkFig9MicrobenchmarksCori regenerates Figure 9 (microbenchmarks, Cori
// style geometry).
func BenchmarkFig9MicrobenchmarksCori(b *testing.B) {
	tables := runExperiment(b, "fig9")
	cellMetric(b, tables[0], 0, 6, "appaware_norm_median_row0")
}

// BenchmarkFig10Applications regenerates Figure 10 (application proxies plus
// the small-allocation FFT).
func BenchmarkFig10Applications(b *testing.B) {
	tables := runExperiment(b, "fig10")
	cellMetric(b, tables[0], 0, 6, "appaware_norm_median_row0")
	cellMetric(b, tables[1], 0, 6, "fft_small_appaware_norm_median")
}

// BenchmarkAblationSelector regenerates the selector design-choice ablations
// (threshold, staleness, scaling factors, counter-read overhead).
func BenchmarkAblationSelector(b *testing.B) {
	tables := runExperiment(b, "ablations")
	if len(tables) > 0 && len(tables[0].Rows) > 2 {
		cellMetric(b, tables[0], 2, 1, "alltoall_median_default_threshold")
	}
}

// BenchmarkAblationNoiseSweep regenerates the interference-intensity sweep
// (extension experiment): alltoall under the three routing configurations as
// the background job becomes more aggressive.
func BenchmarkAblationNoiseSweep(b *testing.B) {
	tables := runExperiment(b, "noisesweep")
	cellMetric(b, tables[0], 0, 1, "no_noise_default_median_cycles")
	cellMetric(b, tables[0], len(tables[0].Rows)-1, 5, "max_noise_appaware_vs_default")
}

// BenchmarkAblationHysteresis regenerates the oscillation-damping study on the
// workloads where the paper's plain algorithm fails to converge (broadcast of
// large messages, sweep3d).
func BenchmarkAblationHysteresis(b *testing.B) {
	tables := runExperiment(b, "hysteresis")
	cellMetric(b, tables[0], 0, 3, "broadcast_switches_no_hysteresis")
	cellMetric(b, tables[0], len(tables[0].Rows)-1, 3, "broadcast_switches_max_hysteresis")
}

// BenchmarkAblationSchedulerInterference regenerates the scheduler-interference
// extension: a halo3d job measured under every combination of batch-placement
// policy (contiguous, random, hybrid) and routing setup.
func BenchmarkAblationSchedulerInterference(b *testing.B) {
	tables := runExperiment(b, "sched")
	// Row 0 is contiguous/Default, row 2 is contiguous/AppAware.
	cellMetric(b, tables[0], 0, 2, "contiguous_default_median_cycles")
	if len(tables[0].Rows) > 2 {
		cellMetric(b, tables[0], 2, 3, "contiguous_appaware_norm_median")
	}
}

// BenchmarkAblationBaselines regenerates the selector-baseline comparison:
// the paper's counter-model-driven selector against the traffic-pattern-based
// classifier of the related work and the two static modes.
func BenchmarkAblationBaselines(b *testing.B) {
	tables := runExperiment(b, "baselines")
	// Rows come in groups of four setups per benchmark: Default, HighBias,
	// AppAware, PatternAware.
	if len(tables[0].Rows) >= 4 {
		cellMetric(b, tables[0], 2, 3, "pingpong_appaware_norm_median")
		cellMetric(b, tables[0], 3, 3, "pingpong_patternaware_norm_median")
	}
}

// BenchmarkAblationCollectiveAlgorithms regenerates the collective-algorithm
// ablation: how the algorithm choice (pairwise/Bruck/spread, doubling/ring/
// Rabenseifner) shifts the best routing mode.
func BenchmarkAblationCollectiveAlgorithms(b *testing.B) {
	tables := runExperiment(b, "collalgos")
	cellMetric(b, tables[0], 0, 1, "alltoall_pairwise_default_median_cycles")
	cellMetric(b, tables[0], 0, 2, "alltoall_pairwise_highbias_norm_median")
}

// BenchmarkAblationTelemetry regenerates the fabric-telemetry experiment:
// congestion time series and group-to-group traffic concentration of an
// alltoall next to a bully job under Adaptive vs Adaptive with High Bias.
func BenchmarkAblationTelemetry(b *testing.B) {
	tables := runExperiment(b, "telemetry")
	cellMetric(b, tables[0], 0, 2, "adaptive_mean_max_util")
	if len(tables[0].Rows) > 1 {
		cellMetric(b, tables[0], 1, 2, "highbias_mean_max_util")
	}
}

// BenchmarkAblationBiasSweep regenerates the non-minimal-bias sweep: the
// execution time and minimal-path share of a latency-bound and a
// bandwidth-bound workload as the UGAL bias grows from 0 to far beyond the
// ADAPTIVE_3 regime.
func BenchmarkAblationBiasSweep(b *testing.B) {
	tables := runExperiment(b, "biassweep")
	cellMetric(b, tables[0], 0, 2, "pingpong_bias0_median_cycles")
	cellMetric(b, tables[0], len(tables[0].Rows)-1, 5, "alltoall_maxbias_minimal_pct")
}

// BenchmarkMachineScaleDaint builds a Daint-class system (14 full Aries
// groups, 5376 nodes, 1344 routers) and runs a short streaming-stats
// workload on it each iteration. B/op is the headline: it is dominated by
// topology construction and fabric arenas, i.e. the machine-scale memory
// cost the compact CSR adjacency and lazy NIC rings exist to bound.
func BenchmarkMachineScaleDaint(b *testing.B) {
	var meanCycles float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := dragonfly.New(
			dragonfly.WithGeometry(dragonfly.Daint),
			dragonfly.WithSeed(1),
		)
		if err != nil {
			b.Fatal(err)
		}
		job, err := sys.Allocate(dragonfly.GroupStriped, 32)
		if err != nil {
			b.Fatal(err)
		}
		res, err := job.Run(&workloads.Alltoall{MessageBytes: 2 << 10, Iterations: 1},
			dragonfly.RunOptions{Iterations: 2, StreamStats: true})
		if err != nil {
			b.Fatal(err)
		}
		meanCycles = res.TimeStats.Mean()
	}
	b.ReportMetric(meanCycles, "daint_alltoall_mean_cycles")
}

// BenchmarkDaintSharded runs the Daint-class workload of
// BenchmarkMachineScaleDaint on the group-sharded engine at several shard
// counts, with shards=1 as the serial baseline (the facade falls back to
// the plain engine there). Output is byte-identical at every shard count —
// the sub-benchmarks cross-check the result against the serial run — so
// ns/op differences are pure wall-clock. Under the default ExactUGAL
// variant packet execution stays in the sharded engine's serial domain (the
// paper's UGAL draws from one shared random stream); the variant=shardable
// rows rerun the same workload under WithRoutingVariant(ShardableUGAL),
// where ~90% of events become conforming-parallel and execute inside
// horizon-window workers. See EXPERIMENTS.md "Intra-run parallelism" and
// "Shardable UGAL" for the measured scaling tables and the one-CPU caveat
// that applies to the committed numbers.
func BenchmarkDaintSharded(b *testing.B) {
	daintRun := func(b *testing.B, shards int, variant dragonfly.RoutingVariant, staleness int) (mean float64, sys *dragonfly.System) {
		opts := []dragonfly.Option{
			dragonfly.WithGeometry(dragonfly.Daint),
			dragonfly.WithSeed(1),
			dragonfly.WithShards(shards),
		}
		if variant != dragonfly.ExactUGAL {
			opts = append(opts, dragonfly.WithRoutingVariant(variant))
		}
		if staleness > 1 {
			opts = append(opts, dragonfly.WithReplicaStaleness(staleness))
		}
		sys, err := dragonfly.New(opts...)
		if err != nil {
			b.Fatal(err)
		}
		job, err := sys.Allocate(dragonfly.GroupStriped, 32)
		if err != nil {
			b.Fatal(err)
		}
		res, err := job.Run(&workloads.Alltoall{MessageBytes: 2 << 10, Iterations: 1},
			dragonfly.RunOptions{Iterations: 2, StreamStats: true})
		if err != nil {
			b.Fatal(err)
		}
		return res.TimeStats.Mean(), sys
	}
	exactBaseline, _ := daintRun(b, 1, dragonfly.ExactUGAL, 1)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run("shards="+strconv.Itoa(shards), func(b *testing.B) {
			var mean float64
			var crossPosts uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var sys *dragonfly.System
				mean, sys = daintRun(b, shards, dragonfly.ExactUGAL, 1)
				if sh := sys.Sharded(); sh != nil {
					crossPosts = sh.CrossPosts()
				}
			}
			if mean != exactBaseline {
				b.Fatalf("shards=%d diverges from serial: mean %v vs %v", shards, mean, exactBaseline)
			}
			b.ReportMetric(mean, "daint_alltoall_mean_cycles")
			b.ReportMetric(float64(crossPosts), "cross_shard_posts")
		})
	}
	// The shardable variant has its own baseline (shards=1 under the same
	// variant): its byte stream differs from exact by construction, so the
	// cross-check is against itself, never against the exact rows above. The
	// conforming_events_pct metric is the share of the event stream the
	// horizon-window workers execute — the structural parallelism the variant
	// unlocks, visible even where core count hides the wall-clock effect.
	for _, staleness := range []int{1, 4} {
		// Each staleness K is its own deterministic model with its own
		// shards=1 baseline; K=4 refreshes the congestion replicas every
		// fourth lookahead window, cutting the serial sync events the windows
		// column counts.
		staleness := staleness
		shardableBaseline, _ := daintRun(b, 1, dragonfly.ShardableUGAL, staleness)
		prefix := "variant=shardable/"
		if staleness > 1 {
			prefix = fmt.Sprintf("variant=shardable/staleness=%d/", staleness)
		}
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(prefix+"shards="+strconv.Itoa(shards), func(b *testing.B) {
				var mean, conforming float64
				var windows uint64
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var sys *dragonfly.System
					mean, sys = daintRun(b, shards, dragonfly.ShardableUGAL, staleness)
					sh := sys.Sharded()
					windows, _ = sh.Windows()
					if total := sys.Engine().ExecutedEvents(); total > 0 {
						conforming = 100 * float64(sh.ConformingExecuted()) / float64(total)
					}
				}
				if mean != shardableBaseline {
					b.Fatalf("variant=shardable staleness=%d shards=%d diverges from its shards=1 run: mean %v vs %v",
						staleness, shards, mean, shardableBaseline)
				}
				b.ReportMetric(mean, "daint_alltoall_mean_cycles")
				b.ReportMetric(conforming, "conforming_events_pct")
				b.ReportMetric(float64(windows), "windows")
			})
		}
	}
}

// BenchmarkOpenStream measures the open-arrival scheduling engine at machine
// scale: 300k compute-only job events admitted, placed and drained on the
// full Daint geometry. The job_events_per_sec metric is the subsystem's
// throughput headline; allocs/op is gated by scripts/bench_smoke.sh
// (openstream_allocs_per_op in BENCH_budget.txt) because the steady-state
// loop — slot arena, recycled node slices, streaming digests — is designed
// to allocate nothing per job.
func BenchmarkOpenStream(b *testing.B) {
	const events = 300_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := dragonfly.New(
			dragonfly.WithGeometry(dragonfly.Daint),
			dragonfly.WithSeed(1),
		)
		if err != nil {
			b.Fatal(err)
		}
		spec := dragonfly.ArrivalSpec{Clients: arrival.DefaultClients(6, 12_000)}.Normalize()
		o, err := sched.NewOpenStream(sys.Fabric(), spec, sched.OpenConfig{
			Placement:    sched.PlaceContiguous,
			Seed:         42,
			MaxJobEvents: events,
		})
		if err != nil {
			b.Fatal(err)
		}
		o.Start()
		if err := o.Drive(nil); err != nil {
			b.Fatal(err)
		}
		if st := o.Stats(); st.Finished != events {
			b.Fatalf("finished %d of %d job events", st.Finished, events)
		}
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "job_events_per_sec")
}
