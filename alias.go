package dragonfly

// This file is the vocabulary of the facade: aliases and re-exports that let
// applications program against the public package alone. The aliases are real
// type aliases, so values flow freely between the facade and the internal
// packages for code (experiments, scheduler, telemetry) that composes with
// both.

import (
	"dragonfly/internal/alloc"
	"dragonfly/internal/arrival"
	"dragonfly/internal/core"
	"dragonfly/internal/counters"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
	"dragonfly/internal/telemetry"
	"dragonfly/internal/topo"
	"dragonfly/internal/workloads"
)

type (
	// Geometry describes a Dragonfly machine shape (groups, chassis, blades,
	// nodes per blade, link widths).
	Geometry = topo.Config
	// RoutingParams configures the UGAL cost model and per-mode biases.
	RoutingParams = routing.Params
	// NetworkConfig configures the fabric (bandwidths, buffering, credits).
	NetworkConfig = network.Config
	// TelemetryConfig configures the fabric-wide telemetry collector.
	TelemetryConfig = telemetry.Config
	// SelectorConfig holds the tunables of the application-aware selector
	// (Algorithm 1 of the paper).
	SelectorConfig = core.Config
	// SelectorStats summarizes what an application-aware selector did.
	SelectorStats = core.Stats
	// Mode is an Aries routing mode (ADAPTIVE_0..3, MIN_HASH, ...).
	Mode = routing.Mode
	// RoutingVariant selects the UGAL state-partitioning variant (ExactUGAL
	// or ShardableUGAL); see WithRoutingVariant.
	RoutingVariant = routing.Variant
	// Policy is a job allocation policy.
	Policy = alloc.Policy
	// AllocationClass is the topological distance class of a node pair.
	AllocationClass = topo.AllocationClass
	// NoisePattern is a background-traffic pattern.
	NoisePattern = noise.Pattern
	// Counters is an Aries-style NIC counter snapshot or delta.
	Counters = counters.NIC
	// TileCounters is a router-tile (per-link) counter snapshot or delta.
	TileCounters = counters.Tile
	// Delivery describes the completion of one message transfer.
	Delivery = network.Delivery
	// Verb is the RDMA verb used for payload transfers.
	Verb = network.Verb
	// Workload is anything that can run on the ranks of a job.
	Workload = workloads.Workload
	// Rank is the per-process handle workload bodies program against.
	Rank = mpi.Rank
	// RoutingProvider decides the routing mode for each message a rank sends;
	// it is the interposition point of the paper's LD_PRELOAD library.
	RoutingProvider = mpi.RoutingProvider
	// TrafficKind tells the selector what kind of operation a message
	// belongs to.
	TrafficKind = core.TrafficKind
	// NodeID identifies a node of the topology.
	NodeID = topo.NodeID
	// DecisionTrace is the per-group ring buffer of recorded routing
	// decisions installed by WithDecisionTrace; read it back with
	// System.DecisionTrace and score it with the counterfactual package.
	DecisionTrace = routing.DecisionTrace
	// TracedDecision is one recorded adaptive routing decision with its
	// top-k candidate paths and congestion costs at decision time.
	TracedDecision = routing.TracedDecision
	// WindowStats summarizes the sharded engine's horizon-window behaviour —
	// window and batched-window counts, mean shard occupancy, cumulative
	// barrier wait; read it back with System.Sharded().WindowStats.
	WindowStats = sim.WindowStats
	// Digest is the fixed-size streaming statistics digest backing
	// Result.TimeStats (exact at small sample counts, P² beyond).
	Digest = stats.Digest
	// Summary is the box-plot style description of a sample distribution
	// (median, quartiles, QCD) produced by Result.TimeSummary.
	Summary = stats.Summary
	// ArrivalSpec describes the client streams of an open-arrival run.
	ArrivalSpec = arrival.Spec
	// ArrivalClient is one tenant's arrival process (SLO class, interarrival
	// distribution, size/duration ranges, optional diurnal modulation).
	ArrivalClient = arrival.Client
	// SLOClass is a tenant service class (latency, batch, best-effort).
	SLOClass = arrival.Class
)

// Routing modes, re-exported so applications need not import the routing
// internals. Adaptive is ADAPTIVE_0 (the default), AdaptiveHighBias is
// ADAPTIVE_3 (the paper's "Adaptive with High Bias").
const (
	Adaptive                = routing.Adaptive
	IncreasinglyMinimalBias = routing.IncreasinglyMinimalBias
	AdaptiveLowBias         = routing.AdaptiveLowBias
	AdaptiveHighBias        = routing.AdaptiveHighBias
	MinHash                 = routing.MinHash
	NonMinHash              = routing.NonMinHash
	InOrder                 = routing.InOrder
)

// Routing variants for WithRoutingVariant. ExactUGAL is the paper's
// serial-domain algorithm (the default, byte-identical to the unsharded
// engine at every shard count); ShardableUGAL trades exact global state for
// per-group RNG streams and bounded-staleness congestion replicas so packet
// execution parallelizes across shards.
const (
	ExactUGAL     = routing.ExactUGAL
	ShardableUGAL = routing.ShardableUGAL
)

// Allocation policies.
const (
	Contiguous    = alloc.Contiguous
	RandomScatter = alloc.RandomScatter
	GroupStriped  = alloc.GroupStriped
)

// Topological distance classes for AllocatePair.
const (
	SameNode     = topo.AllocSameNode
	InterNodes   = topo.AllocInterNodes
	InterBlades  = topo.AllocInterBlades
	InterChassis = topo.AllocInterChassis
	InterGroups  = topo.AllocInterGroups
)

// Background-noise patterns.
const (
	NoiseUniform = noise.UniformRandom
	NoiseHotspot = noise.Hotspot
	NoiseBully   = noise.AlltoallBully
	NoiseBurst   = noise.Burst
)

// Traffic kinds for RoutingProvider implementations and custom workloads.
const (
	PointToPoint    = core.PointToPoint
	AlltoallTraffic = core.Alltoall
)

// SLO classes for open-arrival clients.
const (
	SLOLatency    = arrival.Latency
	SLOBatch      = arrival.Batch
	SLOBestEffort = arrival.BestEffort
)

// SmallGeometry returns the reduced geometry used by examples and tests:
// instant to build, still several groups.
func SmallGeometry(groups int) Geometry { return topo.SmallConfig(groups) }

// MediumGeometry is the CLI-tool geometry: the small shape widened to eight
// blades per chassis and four global links per router.
func MediumGeometry(groups int) Geometry {
	cfg := topo.SmallConfig(groups)
	cfg.BladesPerChassis = 8
	cfg.GlobalLinksPerRouter = 4
	return cfg
}

// AriesGeometry returns full-size Aries groups (6 chassis x 16 blades x 4
// nodes), as on Piz Daint or Cori.
func AriesGeometry(groups int) Geometry { return topo.AriesConfig(groups) }

// ParseMode converts an MPICH_GNI_ROUTING_MODE-style string to a Mode.
func ParseMode(s string) (Mode, error) { return routing.ParseMode(s) }

// ParseRoutingVariant converts a -routing-variant flag value to a
// RoutingVariant: "" or "exact" select ExactUGAL, "shardable" selects
// ShardableUGAL. Case-insensitive.
func ParseRoutingVariant(s string) (RoutingVariant, error) { return routing.ParseVariant(s) }

// ParseRoutingVariantSpec is ParseRoutingVariant with the optional replica-
// staleness suffix: "shardable:staleness=4" selects ShardableUGAL with the
// congestion replicas refreshed every 4 lookahead windows. The returned K
// feeds WithReplicaStaleness (1 when no suffix is given).
func ParseRoutingVariantSpec(s string) (RoutingVariant, int, error) {
	return routing.ParseVariantSpec(s)
}

// ParsePolicy converts an allocation-policy name to a Policy.
func ParsePolicy(s string) (Policy, error) { return alloc.ParsePolicy(s) }

// ParseNoisePattern converts a background-pattern name to a NoisePattern.
func ParseNoisePattern(s string) (NoisePattern, error) { return noise.ParsePattern(s) }

// ParseArrival converts an open-arrival spec string — one
// "class:dist:mean-cycles(:key=value)*" client per semicolon — to an
// ArrivalSpec. Like ParseGeometry and ParseRouting it is case-insensitive and
// ignores whitespace around tokens; see the arrival package for the full
// grammar.
func ParseArrival(s string) (ArrivalSpec, error) { return arrival.ParseSpec(s) }

// NewWorkload builds a registered workload by name for the given rank count.
func NewWorkload(name string, ranks int, size int64) (Workload, error) {
	return workloads.New(name, ranks, size)
}

// WorkloadNames lists the registered workload names.
func WorkloadNames() []string { return workloads.Names() }

// WorkloadFunc wraps a plain rank program as a named Workload, for custom
// communication patterns that are not in the registry.
func WorkloadFunc(name string, body func(*Rank)) Workload {
	return workloads.Func{WorkloadName: name, Body: body}
}
