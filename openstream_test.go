package dragonfly_test

import (
	"runtime"
	"testing"

	"dragonfly"
	"dragonfly/internal/arrival"
	"dragonfly/internal/sched"
)

// TestOpenStreamMillionEventsMemoryBudget is the open-stream acceptance test:
// a fixed-seed run on the full Daint geometry sustains one million simulated
// job events (compute-only jobs, so the fabric carries no packets) while the
// live heap stays flat — the per-job state is recycled through the slot arena
// and every metric folds into fixed-size streaming digests, so memory is
// O(machine), not O(horizon).
func TestOpenStreamMillionEventsMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("million-event horizon in -short mode")
	}
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.Daint),
		dragonfly.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	spec := arrival.Spec{Clients: arrival.DefaultClients(6, 12_000)}.Normalize()
	o, err := sched.NewOpenStream(sys.Fabric(), spec, sched.OpenConfig{
		Placement:    sched.PlaceContiguous,
		Seed:         42,
		MaxJobEvents: 1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	o.Start()
	if err := o.Drive(nil); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Admitted != 1_000_000 || st.Finished != st.Admitted {
		t.Fatalf("run did not sustain the horizon: admitted %d, finished %d", st.Admitted, st.Finished)
	}
	if st.Utilization <= 0 || st.Utilization > 1 {
		t.Fatalf("utilization %v out of (0, 1]", st.Utilization)
	}
	if st.JainFairness <= 0 || st.JainFairness > 1+1e-12 {
		t.Fatalf("Jain index %v out of (0, 1]", st.JainFairness)
	}
	for c := 0; c < arrival.NumClasses; c++ {
		if st.Classes[c].Finished == 0 {
			t.Fatalf("class %v finished no jobs", arrival.Class(c))
		}
		if s := st.Classes[c].Slowdown; s.N == 0 || s.Min < 1 {
			t.Fatalf("class %v slowdown digest empty or below 1: %+v", arrival.Class(c), s)
		}
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("1M job events on Daint: util %.2f, Jain %.3f, max queue %d, live heap %.2f MiB",
		st.Utilization, st.JainFairness, st.MaxQueueLength, float64(ms.HeapAlloc)/(1<<20))
	const budgetMiB = 96 // Daint fabric plus O(machine) scheduler state
	if got := ms.HeapAlloc >> 20; got > budgetMiB {
		t.Fatalf("open-stream run holds %d MiB live heap after 1M job events, budget %d MiB", got, budgetMiB)
	}
}
