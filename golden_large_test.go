package dragonfly_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"dragonfly"
	"dragonfly/internal/workloads"
)

// Golden hashes over the Large ladder rung (6 full Aries groups, 2304
// nodes): a single Job.Run and a two-application RunConcurrent, at tiny
// iteration counts. They pin the compact-arena refactor — CSR adjacency
// without the dense mirror (Large is past the cutoff), lazy NIC windows,
// streaming digests — byte-identical end to end at a machine size the old
// dense structures made wasteful. Captured at PR 5 after verifying the
// pre-existing quick-scale goldens (fig3, noisesweep, cotenant) unchanged.
const (
	goldenLargeSingle     = "b4baddc597a56da2a9da20cfe63969b7fe78024b5c992b40549e01f3f135ed6b"
	goldenLargeConcurrent = "32171faaf57519179e34241ec13383bbd2b3067e62d7b44db1fb8f0bde12bf9a"
)

// renderResults formats everything deterministic a Result carries.
func renderResults(results []dragonfly.Result) string {
	var b strings.Builder
	for i, r := range results {
		fmt.Fprintf(&b, "job %d setup=%s times=%v tileFlits=%d tileStalled=%d\n",
			i, r.Setup, r.Times, r.TileFlits, r.TileStalled)
		fmt.Fprintf(&b, "  counters=%+v\n", r.Counters)
		for j, d := range r.Deltas {
			fmt.Fprintf(&b, "  delta[%d]=%+v\n", j, d)
		}
	}
	return b.String()
}

func sha(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// largeSystem builds the Large-rung system with two disjoint 16-node jobs.
func largeSystem(t *testing.T) (*dragonfly.System, *dragonfly.Job, *dragonfly.Job) {
	t.Helper()
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.Large),
		dragonfly.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := sys.Allocate(dragonfly.GroupStriped, 16)
	if err != nil {
		t.Fatal(err)
	}
	neighbor, err := sys.Allocate(dragonfly.GroupStriped, 16)
	if err != nil {
		t.Fatal(err)
	}
	return sys, victim, neighbor
}

// TestGoldenLargeSingleRun pins a Job.Run on the Large preset.
func TestGoldenLargeSingleRun(t *testing.T) {
	_, victim, _ := largeSystem(t)
	res, err := victim.Run(&workloads.Alltoall{MessageBytes: 2 << 10, Iterations: 1},
		dragonfly.RunOptions{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	rendered := renderResults([]dragonfly.Result{res})
	if got := sha(rendered); got != goldenLargeSingle {
		t.Fatalf("Large-preset Job.Run drifted from the golden hash:\n got %s\nwant %s\nrendered:\n%s",
			got, goldenLargeSingle, rendered)
	}
}

// TestGoldenLargeRunConcurrent pins a two-application RunConcurrent on the
// Large preset: an alltoall victim under the Cray default routing next to a
// halo3d neighbor under Adaptive with High Bias.
func TestGoldenLargeRunConcurrent(t *testing.T) {
	sys, victim, neighbor := largeSystem(t)
	nw, err := dragonfly.NewWorkload("halo3d", neighbor.Size(), workloads.SizeFor("halo3d", 2<<10))
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.RunConcurrent([]dragonfly.JobRun{
		{
			Job:      victim,
			Workload: &workloads.Alltoall{MessageBytes: 2 << 10, Iterations: 1},
			Options:  dragonfly.RunOptions{Iterations: 2},
		},
		{
			Job:      neighbor,
			Workload: nw,
			Options: dragonfly.RunOptions{
				Routing:    dragonfly.StaticRouting(dragonfly.AdaptiveHighBias),
				Iterations: 2,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rendered := renderResults(results)
	if got := sha(rendered); got != goldenLargeConcurrent {
		t.Fatalf("Large-preset RunConcurrent drifted from the golden hash:\n got %s\nwant %s\nrendered:\n%s",
			got, goldenLargeConcurrent, rendered)
	}
}
