package dragonfly

import (
	"context"
	"fmt"

	"dragonfly/internal/alloc"
	"dragonfly/internal/mpi"
	"dragonfly/internal/sim"
)

// Job is a set of nodes allocated to one application on a System. Running a
// workload on it builds an MPI-style communicator (one rank per allocated
// node) and drives the simulation until the workload completes.
//
// A Job is bound to the System epoch it was allocated in: after
// System.Reset, running a pre-Reset job fails with an error.
type Job struct {
	sys   *System
	alloc *alloc.Allocation
	epoch uint64
}

// System returns the system the job is allocated on.
func (j *Job) System() *System { return j.sys }

// Allocation returns the underlying allocation (escape hatch for subsystems
// that work on allocations, like the trial harness and the scheduler).
func (j *Job) Allocation() *alloc.Allocation { return j.alloc }

// Nodes returns the allocated nodes in rank order.
func (j *Job) Nodes() []NodeID { return j.alloc.Nodes() }

// Size returns the number of ranks (allocated nodes).
func (j *Job) Size() int { return j.alloc.Size() }

// String summarizes the job's placement.
func (j *Job) String() string { return j.alloc.String() }

// Counters sums the current NIC counters over the job's nodes. Subtract two
// snapshots to isolate a phase; Run does this per iteration automatically.
// Counters reads the fabric's current state: on a job from before a
// System.Reset it reports the new epoch's counters over the old node set
// (only Run enforces the epoch guard).
func (j *Job) Counters() Counters {
	var total Counters
	for _, n := range j.alloc.Nodes() {
		total.Add(j.sys.fabric.NodeCounters(n))
	}
	return total
}

// RunOptions configures one Job.Run call. The zero value runs a single
// iteration under the Cray default routing.
type RunOptions struct {
	// Routing selects the routing configuration; the zero value means
	// DefaultRouting().
	Routing Routing
	// Iterations is the number of measured repetitions (minimum 1). The
	// communicator (and any selector state) persists across iterations.
	Iterations int
	// HostNoise, if non-nil, samples a host-side delay in cycles at every
	// point-to-point operation, modelling OS noise.
	HostNoise func(rank int) int64
	// Verb is the RDMA verb used for payload transfers.
	Verb Verb
	// Context, if non-nil, is checked between iterations so a cancelled
	// suite aborts mid-run.
	Context context.Context
	// RecordDeliveries captures every message delivery of the run into
	// Result.Deliveries. It claims the fabric's delivery observer for the
	// duration of the run, so it cannot be combined with an external message
	// log attached to the same fabric.
	RecordDeliveries bool
}

// Result is what one Job.Run measured.
type Result struct {
	// Setup is the name of the routing configuration that ran.
	Setup string
	// Times holds one execution time (cycles) per iteration.
	Times []sim.Time
	// Deltas holds the per-iteration NIC counter deltas summed over the job.
	Deltas []Counters
	// Counters is the total NIC counter delta over all iterations.
	Counters Counters
	// TileFlits and TileStalled are the router-tile deltas (incoming flits
	// and stalled flits) over the routers the job's nodes attach to.
	TileFlits, TileStalled uint64
	// SelectorStats aggregates the application-aware selector statistics
	// when the routing configuration provides them (see HasSelectorStats).
	SelectorStats SelectorStats
	// HasSelectorStats reports whether SelectorStats is meaningful.
	HasSelectorStats bool
	// Deliveries are the raw message completions of the run, recorded only
	// when RunOptions.RecordDeliveries was set.
	Deliveries []Delivery
}

// Time returns the total execution time over all iterations.
func (r Result) Time() sim.Time {
	var total sim.Time
	for _, t := range r.Times {
		total += t
	}
	return total
}

// TimesFloat returns the per-iteration times as float64s, the shape the stats
// helpers consume.
func (r Result) TimesFloat() []float64 {
	out := make([]float64, len(r.Times))
	for i, t := range r.Times {
		out[i] = float64(t)
	}
	return out
}

// Run executes the workload on the job's ranks under the given options and
// returns the measurement. Each rank runs the workload body as a goroutine in
// ordinary blocking style; a cooperative scheduler interleaves them with the
// event engine, so the run is deterministic.
func (j *Job) Run(w Workload, opts RunOptions) (Result, error) {
	if w == nil {
		return Result{}, fmt.Errorf("dragonfly: nil workload")
	}
	if j.epoch != j.sys.epoch {
		return Result{}, fmt.Errorf("dragonfly: job is stale: it was allocated before System.Reset")
	}
	rc := opts.Routing
	if rc.Provider == nil {
		rc = DefaultRouting()
	}
	iters := opts.Iterations
	if iters < 1 {
		iters = 1
	}
	comm, err := mpi.NewComm(j.sys.fabric, j.alloc, mpi.Config{
		Routing:   rc.Provider,
		Verb:      opts.Verb,
		HostNoise: opts.HostNoise,
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Setup: rc.Name}
	if opts.RecordDeliveries {
		j.sys.fabric.SetDeliveryObserver(func(d Delivery) {
			res.Deliveries = append(res.Deliveries, d)
		})
		defer j.sys.fabric.SetDeliveryObserver(nil)
	}
	routers := j.alloc.Routers()
	flits0, stalled0 := j.sys.fabric.IncomingFlits(routers)
	for iter := 0; iter < iters; iter++ {
		if opts.Context != nil {
			if err := opts.Context.Err(); err != nil {
				return res, fmt.Errorf("dragonfly: cancelled at iteration %d: %w", iter, err)
			}
		}
		before := j.Counters()
		start := j.sys.engine.Now()
		if err := comm.Run(w.Run); err != nil {
			return res, err
		}
		for r := 0; r < comm.Size(); r++ {
			if err := comm.Rank(r).Err(); err != nil {
				return res, fmt.Errorf("dragonfly: rank %d: %w", r, err)
			}
		}
		res.Times = append(res.Times, j.sys.engine.Now()-start)
		res.Deltas = append(res.Deltas, j.Counters().Sub(before))
	}
	flits1, stalled1 := j.sys.fabric.IncomingFlits(routers)
	res.TileFlits, res.TileStalled = flits1-flits0, stalled1-stalled0
	for _, d := range res.Deltas {
		res.Counters.Add(d)
	}
	if rc.Stats != nil {
		res.SelectorStats = rc.Stats()
		res.HasSelectorStats = true
	}
	return res, nil
}
