package dragonfly

import (
	"context"

	"dragonfly/internal/alloc"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
)

// Job is a set of nodes allocated to one application on a System. Running a
// workload on it builds an MPI-style communicator (one rank per allocated
// node) and drives the simulation until the workload completes.
//
// A Job is bound to the System epoch it was allocated in: after
// System.Reset, running a pre-Reset job fails with an error.
type Job struct {
	sys   *System
	alloc *alloc.Allocation
	epoch uint64
}

// System returns the system the job is allocated on.
func (j *Job) System() *System { return j.sys }

// Allocation returns the underlying allocation (escape hatch for subsystems
// that work on allocations, like the trial harness and the scheduler).
func (j *Job) Allocation() *alloc.Allocation { return j.alloc }

// Nodes returns the allocated nodes in rank order.
func (j *Job) Nodes() []NodeID { return j.alloc.Nodes() }

// Size returns the number of ranks (allocated nodes).
func (j *Job) Size() int { return j.alloc.Size() }

// String summarizes the job's placement.
func (j *Job) String() string { return j.alloc.String() }

// Counters sums the current NIC counters over the job's nodes. Subtract two
// snapshots to isolate a phase; Run does this per iteration automatically.
// Counters reads the fabric's current state: on a job from before a
// System.Reset it reports the new epoch's counters over the old node set
// (only Run enforces the epoch guard).
func (j *Job) Counters() Counters {
	var total Counters
	for _, n := range j.alloc.Nodes() {
		total.Add(j.sys.fabric.NodeCounters(n))
	}
	return total
}

// RunOptions configures one Job.Run call. The zero value runs a single
// iteration under the Cray default routing.
type RunOptions struct {
	// Routing selects the routing configuration; the zero value means
	// DefaultRouting().
	Routing Routing
	// Iterations is the number of measured repetitions (minimum 1). The
	// communicator (and any selector state) persists across iterations.
	Iterations int
	// HostNoise, if non-nil, samples a host-side delay in cycles at every
	// point-to-point operation, modelling OS noise.
	HostNoise func(rank int) int64
	// Verb is the RDMA verb used for payload transfers.
	Verb Verb
	// Context, if non-nil, is checked before the first iteration, between
	// iterations, and periodically while the simulation advances, so a
	// cancelled suite aborts even mid-iteration.
	Context context.Context
	// RecordDeliveries captures message deliveries of the run into
	// Result.Deliveries: every delivery on the fabric for a single-job run
	// (Job.Run), only the deliveries touching the job's nodes inside a
	// multi-job RunConcurrent. The capture uses one of the fabric's delivery
	// observer slots and coexists with a message log or telemetry attached to
	// the same fabric.
	RecordDeliveries bool
	// StreamStats drops the unbounded per-iteration slices (Result.Times,
	// Result.Deltas) and keeps only the fixed-size streaming digest
	// (Result.TimeStats) plus the aggregate counters, so a machine-scale run
	// with millions of iterations measures in O(1) memory. The digest is
	// exact below stats.DefaultExactSamples iterations, so small runs lose
	// nothing but the raw slices.
	StreamStats bool
}

// Result is what one Job.Run measured.
type Result struct {
	// Setup is the name of the routing configuration that ran.
	Setup string
	// Times holds one execution time (cycles) per iteration. Empty when the
	// run used RunOptions.StreamStats; use TimeStats then.
	Times []sim.Time
	// Deltas holds the per-iteration NIC counter deltas summed over the job.
	// Empty when the run used RunOptions.StreamStats (Counters still carries
	// the total).
	Deltas []Counters
	// TimeStats is the fixed-size streaming digest of the per-iteration
	// times. It is populated on every run — exact below the digest's sample
	// limit, P²-approximate beyond it — and is the only per-iteration timing
	// record of a StreamStats run.
	TimeStats *stats.Digest

	// totalTime is the exact integer sum of the iteration times, maintained
	// by the runner so Time() stays precise for StreamStats runs whose
	// float64 digest sum would round past 2^53 cycles.
	totalTime sim.Time
	// Counters is the total NIC counter delta over all iterations.
	Counters Counters
	// TileFlits and TileStalled are the router-tile deltas (incoming flits
	// and stalled flits) over the routers the job's nodes attach to.
	TileFlits, TileStalled uint64
	// SelectorStats aggregates the application-aware selector statistics
	// when the routing configuration provides them (see HasSelectorStats).
	SelectorStats SelectorStats
	// HasSelectorStats reports whether SelectorStats is meaningful.
	HasSelectorStats bool
	// Deliveries are the raw message completions of the run, recorded only
	// when RunOptions.RecordDeliveries was set.
	Deliveries []Delivery
}

// Time returns the total execution time over all iterations, exact for both
// slice-backed and StreamStats runs.
func (r Result) Time() sim.Time {
	if len(r.Times) == 0 {
		return r.totalTime
	}
	var total sim.Time
	for _, t := range r.Times {
		total += t
	}
	return total
}

// TimeSummary condenses the per-iteration times into the box-plot summary the
// experiment tables render. It reads the streaming digest, so it works
// identically for slice-backed and StreamStats runs (and is bit-identical to
// stats.Summarize over Times while the digest is in its exact regime).
func (r Result) TimeSummary() stats.Summary {
	if r.TimeStats != nil {
		return r.TimeStats.Summary()
	}
	return stats.Summarize(r.TimesFloat())
}

// TimesFloat returns the per-iteration times as float64s, the shape the stats
// helpers consume.
func (r Result) TimesFloat() []float64 {
	out := make([]float64, len(r.Times))
	for i, t := range r.Times {
		out[i] = float64(t)
	}
	return out
}

// Run executes the workload on the job's ranks under the given options and
// returns the measurement. Each rank runs the workload body as a goroutine in
// ordinary blocking style; a cooperative scheduler interleaves them with the
// event engine, so the run is deterministic.
//
// Run is the single-job special case of System.RunConcurrent: to measure this
// job while other real applications load the fabric, put them all in one
// RunConcurrent call instead.
func (j *Job) Run(w Workload, opts RunOptions) (Result, error) {
	rs, err := j.sys.RunConcurrent([]JobRun{{Job: j, Workload: w, Options: opts}})
	if len(rs) != 1 {
		return Result{}, err
	}
	return rs[0], err
}
