package dragonfly

import (
	"context"

	"dragonfly/internal/alloc"
	"dragonfly/internal/sim"
)

// Job is a set of nodes allocated to one application on a System. Running a
// workload on it builds an MPI-style communicator (one rank per allocated
// node) and drives the simulation until the workload completes.
//
// A Job is bound to the System epoch it was allocated in: after
// System.Reset, running a pre-Reset job fails with an error.
type Job struct {
	sys   *System
	alloc *alloc.Allocation
	epoch uint64
}

// System returns the system the job is allocated on.
func (j *Job) System() *System { return j.sys }

// Allocation returns the underlying allocation (escape hatch for subsystems
// that work on allocations, like the trial harness and the scheduler).
func (j *Job) Allocation() *alloc.Allocation { return j.alloc }

// Nodes returns the allocated nodes in rank order.
func (j *Job) Nodes() []NodeID { return j.alloc.Nodes() }

// Size returns the number of ranks (allocated nodes).
func (j *Job) Size() int { return j.alloc.Size() }

// String summarizes the job's placement.
func (j *Job) String() string { return j.alloc.String() }

// Counters sums the current NIC counters over the job's nodes. Subtract two
// snapshots to isolate a phase; Run does this per iteration automatically.
// Counters reads the fabric's current state: on a job from before a
// System.Reset it reports the new epoch's counters over the old node set
// (only Run enforces the epoch guard).
func (j *Job) Counters() Counters {
	var total Counters
	for _, n := range j.alloc.Nodes() {
		total.Add(j.sys.fabric.NodeCounters(n))
	}
	return total
}

// RunOptions configures one Job.Run call. The zero value runs a single
// iteration under the Cray default routing.
type RunOptions struct {
	// Routing selects the routing configuration; the zero value means
	// DefaultRouting().
	Routing Routing
	// Iterations is the number of measured repetitions (minimum 1). The
	// communicator (and any selector state) persists across iterations.
	Iterations int
	// HostNoise, if non-nil, samples a host-side delay in cycles at every
	// point-to-point operation, modelling OS noise.
	HostNoise func(rank int) int64
	// Verb is the RDMA verb used for payload transfers.
	Verb Verb
	// Context, if non-nil, is checked before the first iteration, between
	// iterations, and periodically while the simulation advances, so a
	// cancelled suite aborts even mid-iteration.
	Context context.Context
	// RecordDeliveries captures message deliveries of the run into
	// Result.Deliveries: every delivery on the fabric for a single-job run
	// (Job.Run), only the deliveries touching the job's nodes inside a
	// multi-job RunConcurrent. The capture uses one of the fabric's delivery
	// observer slots and coexists with a message log or telemetry attached to
	// the same fabric.
	RecordDeliveries bool
}

// Result is what one Job.Run measured.
type Result struct {
	// Setup is the name of the routing configuration that ran.
	Setup string
	// Times holds one execution time (cycles) per iteration.
	Times []sim.Time
	// Deltas holds the per-iteration NIC counter deltas summed over the job.
	Deltas []Counters
	// Counters is the total NIC counter delta over all iterations.
	Counters Counters
	// TileFlits and TileStalled are the router-tile deltas (incoming flits
	// and stalled flits) over the routers the job's nodes attach to.
	TileFlits, TileStalled uint64
	// SelectorStats aggregates the application-aware selector statistics
	// when the routing configuration provides them (see HasSelectorStats).
	SelectorStats SelectorStats
	// HasSelectorStats reports whether SelectorStats is meaningful.
	HasSelectorStats bool
	// Deliveries are the raw message completions of the run, recorded only
	// when RunOptions.RecordDeliveries was set.
	Deliveries []Delivery
}

// Time returns the total execution time over all iterations.
func (r Result) Time() sim.Time {
	var total sim.Time
	for _, t := range r.Times {
		total += t
	}
	return total
}

// TimesFloat returns the per-iteration times as float64s, the shape the stats
// helpers consume.
func (r Result) TimesFloat() []float64 {
	out := make([]float64, len(r.Times))
	for i, t := range r.Times {
		out[i] = float64(t)
	}
	return out
}

// Run executes the workload on the job's ranks under the given options and
// returns the measurement. Each rank runs the workload body as a goroutine in
// ordinary blocking style; a cooperative scheduler interleaves them with the
// event engine, so the run is deterministic.
//
// Run is the single-job special case of System.RunConcurrent: to measure this
// job while other real applications load the fabric, put them all in one
// RunConcurrent call instead.
func (j *Job) Run(w Workload, opts RunOptions) (Result, error) {
	rs, err := j.sys.RunConcurrent([]JobRun{{Job: j, Workload: w, Options: opts}})
	if len(rs) != 1 {
		return Result{}, err
	}
	return rs[0], err
}
