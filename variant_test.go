package dragonfly_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"dragonfly"
	"dragonfly/internal/testutil"
	"dragonfly/internal/workloads"
)

// Golden hashes of the ShardableUGAL variant — its own family, separate from
// every ExactUGAL golden: the variant's byte stream differs from the paper's
// serial algorithm by construction (per-group RNG streams, bounded-staleness
// congestion replicas) but is itself pinned: byte-identical across shard
// counts {1, 2, 4, 8} and across the Job.Run and RunConcurrent drive modes.
// Captured at PR 8; re-pinned at PR 9 when rank-compute wakeups and delivery
// completions moved from the deferred-serial domain to conforming-parallel
// execution (the canonical-key merge reorders the variant's byte stream; the
// ExactUGAL goldens are untouched).
const (
	goldenShardableSmallRun        = "90bed2495ea172149ad54fb3c583c0dca70b477cd5bd07a4be5124a04cf35c0b"
	goldenShardableMediumRun       = "dcb142c7c24028e116c63965169b36a29b1afbc6fa147e1b987b2b79b9f7f526"
	goldenShardableSmallConcurrent = "d6ca95a6ebe8ce78b86c14dceb5c7d11e887046f6dc17f2b49879d0b29709eae"
)

// Golden hashes of the replica-staleness decimation (WithReplicaStaleness):
// each K > 1 is its own deterministic model — the congestion replicas refresh
// every K lookahead windows instead of every window — pinned byte-identical
// across shard counts and both drive modes. K = 1 is arithmetic-identical to
// the base shardable family above and is covered by those pins.
const (
	goldenShardableSmallK2           = "0184d9b5e1ecdd09002d75030db492c08b4bb372d4c4ab1c9b68f451e39244e1"
	goldenShardableSmallK4Run        = "16425fac3a5f689a9998abc91cb77e46ab57f95e71ab535b9429e29d12f61710"
	goldenShardableSmallK4Concurrent = "1f08339b433999e4e380fb92f3ac01be46090f350cf2990849929b33e26a7953"
)

// shardableSystem builds a ShardableUGAL system on the given geometry with
// the requested intra-run shard count.
func shardableSystem(t *testing.T, g dragonfly.Geometry, seed int64, shards int) *dragonfly.System {
	t.Helper()
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(g),
		dragonfly.WithSeed(seed),
		dragonfly.WithShards(shards),
		dragonfly.WithRoutingVariant(dragonfly.ShardableUGAL),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestShardableByteIdenticalAcrossShards is the variant's determinism bar:
// on each rung the rendered Result of the same job is byte-identical at
// every shard count, pinned by the variant's own golden SHA256.
func TestShardableByteIdenticalAcrossShards(t *testing.T) {
	for _, tc := range []struct {
		rung   string
		geom   dragonfly.Geometry
		golden string
	}{
		{"small", dragonfly.Small, goldenShardableSmallRun},
		{"medium", dragonfly.Medium, goldenShardableMediumRun},
	} {
		tc := tc
		t.Run(tc.rung, func(t *testing.T) {
			want := runLadderJob(t, shardableSystem(t, tc.geom, 7, 1))
			if got := sha(want); got != tc.golden {
				t.Errorf("shards=1 drifted from the shardable golden hash on %s:\n got %s\nwant %s",
					tc.rung, got, tc.golden)
			}
			for _, shards := range []int{2, 4, 8} {
				sys := shardableSystem(t, tc.geom, 7, shards)
				if got := runLadderJob(t, sys); got != want {
					t.Fatalf("shards=%d (effective %d) diverges on %s:\n got: %s\nwant: %s",
						shards, sys.Shards(), tc.rung, got, want)
				}
			}
		})
	}
}

// TestShardableRunConcurrentByteIdentical covers the second drive mode: the
// MPI scheduler's stepUntil path (Step-driven windows) must produce the same
// byte stream as Job.Run-driven windows at every shard count.
func TestShardableRunConcurrentByteIdentical(t *testing.T) {
	run := func(shards int) string {
		sys := shardableSystem(t, dragonfly.Small, 11, shards)
		victim, err := sys.Allocate(dragonfly.GroupStriped, 16)
		if err != nil {
			t.Fatal(err)
		}
		neighbor, err := sys.Allocate(dragonfly.GroupStriped, 16)
		if err != nil {
			t.Fatal(err)
		}
		results, err := sys.RunConcurrent([]dragonfly.JobRun{
			{
				Job:      victim,
				Workload: &workloads.Alltoall{MessageBytes: 2 << 10, Iterations: 1},
				Options:  dragonfly.RunOptions{Iterations: 2},
			},
			{
				Job:      neighbor,
				Workload: workloads.NewHalo3D(16, 256, 2),
				Options: dragonfly.RunOptions{
					Routing:    dragonfly.StaticRouting(dragonfly.AdaptiveHighBias),
					Iterations: 2,
				},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return renderResults(results)
	}
	want := run(1)
	if got := sha(want); got != goldenShardableSmallConcurrent {
		t.Errorf("shards=1 RunConcurrent drifted from the shardable golden hash:\n got %s\nwant %s",
			got, goldenShardableSmallConcurrent)
	}
	for _, shards := range []int{2, 4, 8} {
		if got := run(shards); got != want {
			t.Fatalf("RunConcurrent shards=%d diverges:\n got: %s\nwant: %s", shards, got, want)
		}
	}
}

// stalenessSystem is shardableSystem with the replica-sync decimation factor.
func stalenessSystem(t *testing.T, g dragonfly.Geometry, seed int64, shards, k int) *dragonfly.System {
	t.Helper()
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(g),
		dragonfly.WithSeed(seed),
		dragonfly.WithShards(shards),
		dragonfly.WithRoutingVariant(dragonfly.ShardableUGAL),
		dragonfly.WithReplicaStaleness(k),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestShardableStalenessGolden pins the replica-staleness decimation family:
// each K > 1 is a distinct deterministic model, byte-identical across shard
// counts {1, 2, 4, 8} and across both drive modes (Job.Run and the MPI
// scheduler's RunConcurrent), while K = 1 collapses to the base shardable
// byte stream exactly.
func TestShardableStalenessGolden(t *testing.T) {
	// K = 1 is not a new model: refreshing the replicas every lookahead
	// window is precisely the base behaviour.
	base := runLadderJob(t, shardableSystem(t, dragonfly.Small, 7, 1))
	if got := runLadderJob(t, stalenessSystem(t, dragonfly.Small, 7, 1, 1)); got != base {
		t.Fatal("WithReplicaStaleness(1) diverges from the base shardable byte stream")
	}

	for _, tc := range []struct {
		k      int
		golden string
	}{
		{2, goldenShardableSmallK2},
		{4, goldenShardableSmallK4Run},
	} {
		tc := tc
		t.Run(fmt.Sprintf("k%d", tc.k), func(t *testing.T) {
			want := runLadderJob(t, stalenessSystem(t, dragonfly.Small, 7, 1, tc.k))
			if want == base {
				t.Errorf("staleness %d reproduced the K=1 byte stream; decimation should be a real model change", tc.k)
			}
			if got := sha(want); got != tc.golden {
				t.Errorf("shards=1 staleness=%d drifted from the golden hash:\n got %s\nwant %s",
					tc.k, got, tc.golden)
			}
			for _, shards := range []int{2, 4, 8} {
				sys := stalenessSystem(t, dragonfly.Small, 7, shards, tc.k)
				if got := runLadderJob(t, sys); got != want {
					t.Fatalf("shards=%d staleness=%d diverges:\n got: %s\nwant: %s",
						shards, tc.k, got, want)
				}
			}
		})
	}
}

// TestShardableStalenessConcurrentGolden covers the decimation family under
// the second drive mode: RunConcurrent at staleness 4 must render the same
// bytes at every shard count, pinned by its own golden.
func TestShardableStalenessConcurrentGolden(t *testing.T) {
	run := func(shards int) string {
		sys := stalenessSystem(t, dragonfly.Small, 11, shards, 4)
		victim, err := sys.Allocate(dragonfly.GroupStriped, 16)
		if err != nil {
			t.Fatal(err)
		}
		neighbor, err := sys.Allocate(dragonfly.GroupStriped, 16)
		if err != nil {
			t.Fatal(err)
		}
		results, err := sys.RunConcurrent([]dragonfly.JobRun{
			{
				Job:      victim,
				Workload: &workloads.Alltoall{MessageBytes: 2 << 10, Iterations: 1},
				Options:  dragonfly.RunOptions{Iterations: 2},
			},
			{
				Job:      neighbor,
				Workload: workloads.NewHalo3D(16, 256, 2),
				Options: dragonfly.RunOptions{
					Routing:    dragonfly.StaticRouting(dragonfly.AdaptiveHighBias),
					Iterations: 2,
				},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return renderResults(results)
	}
	want := run(1)
	if got := sha(want); got != goldenShardableSmallK4Concurrent {
		t.Errorf("shards=1 RunConcurrent staleness=4 drifted from the golden hash:\n got %s\nwant %s",
			got, goldenShardableSmallK4Concurrent)
	}
	for _, shards := range []int{2, 4, 8} {
		if got := run(shards); got != want {
			t.Fatalf("RunConcurrent shards=%d staleness=4 diverges:\n got: %s\nwant: %s", shards, got, want)
		}
	}
}

// TestReplicaStalenessValidation pins the option's error contract: the knob
// belongs to the shardable variant only, and out-of-range factors are
// rejected at construction.
func TestReplicaStalenessValidation(t *testing.T) {
	if _, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.Small),
		dragonfly.WithReplicaStaleness(4),
	); err == nil {
		t.Error("WithReplicaStaleness(4) accepted under ExactUGAL")
	}
	if _, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.Small),
		dragonfly.WithRoutingVariant(dragonfly.ShardableUGAL),
		dragonfly.WithReplicaStaleness(-1),
	); err == nil {
		t.Error("WithReplicaStaleness(-1) accepted")
	}
	sys := stalenessSystem(t, dragonfly.Small, 1, 2, 4)
	if got := sys.ReplicaStaleness(); got != 4 {
		t.Errorf("ReplicaStaleness() = %d, want 4", got)
	}
}

// TestShardableDiffersFromExact sanity-checks that the variant is a real
// model change: per-group RNG streams and replicated congestion views must
// not happen to reproduce the exact serial byte stream.
func TestShardableDiffersFromExact(t *testing.T) {
	exact := runLadderJob(t, shardedSystem(t, dragonfly.Small, 7, 1))
	shardable := runLadderJob(t, shardableSystem(t, dragonfly.Small, 7, 1))
	if exact == shardable {
		t.Fatal("ShardableUGAL reproduced the ExactUGAL byte stream; the variants should differ by construction")
	}
}

// TestShardableResetMatchesFresh pins the harness pooling contract for the
// variant: Reset reruns byte-identically, keeping the lane RNG streams and
// congestion replicas in their freshly-built state.
func TestShardableResetMatchesFresh(t *testing.T) {
	sys := shardableSystem(t, dragonfly.Small, 9, 2)
	want := runLadderJob(t, sys)
	if err := sys.Reset(9); err != nil {
		t.Fatal(err)
	}
	if got := runLadderJob(t, sys); got != want {
		t.Fatalf("shardable rerun after Reset diverges:\n got: %s\nwant: %s", got, want)
	}
	// Reset to a different seed must also match a fresh system at that seed.
	if err := sys.Reset(10); err != nil {
		t.Fatal(err)
	}
	reseeded := runLadderJob(t, sys)
	fresh := runLadderJob(t, shardableSystem(t, dragonfly.Small, 10, 2))
	if reseeded != fresh {
		t.Fatalf("shardable Reset(10) diverges from a fresh seed-10 system:\n got: %s\nwant: %s",
			reseeded, fresh)
	}
}

// TestShardableDriverResolution pins the variant's driver contract: the
// sharded driver is always attached (even at an effective shard count of 1,
// so shard count never changes the byte stream), exact-variant systems keep
// the old resolution ladder, and single-group geometries are rejected
// loudly instead of silently degrading to a serial dialect.
func TestShardableDriverResolution(t *testing.T) {
	sys := shardableSystem(t, dragonfly.Small, 1, 1)
	if sys.Sharded() == nil {
		t.Fatal("ShardableUGAL system has no sharded driver at WithShards(1)")
	}
	if got := sys.Shards(); got != 1 {
		t.Fatalf("WithShards(1) → Shards() = %d, want 1", got)
	}
	if got := sys.RoutingVariant(); got != dragonfly.ShardableUGAL {
		t.Fatalf("RoutingVariant() = %v, want ShardableUGAL", got)
	}
	if got := dragonfly.MustNew().RoutingVariant(); got != dragonfly.ExactUGAL {
		t.Fatalf("default RoutingVariant() = %v, want ExactUGAL", got)
	}
	if _, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.SmallGeometry(1)),
		dragonfly.WithRoutingVariant(dragonfly.ShardableUGAL),
	); err == nil {
		t.Fatal("ShardableUGAL accepted a single-group geometry")
	}
}

// TestParseRoutingVariant pins the CLI grammar of the -routing-variant flag.
func TestParseRoutingVariant(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want dragonfly.RoutingVariant
		ok   bool
	}{
		{"", dragonfly.ExactUGAL, true},
		{"exact", dragonfly.ExactUGAL, true},
		{" Exact ", dragonfly.ExactUGAL, true},
		{"ugal", dragonfly.ExactUGAL, true},
		{"serial", dragonfly.ExactUGAL, true},
		{"shardable", dragonfly.ShardableUGAL, true},
		{"SHARDABLE", dragonfly.ShardableUGAL, true},
		{"sharded", dragonfly.ShardableUGAL, true},
		{"parallel", dragonfly.ShardableUGAL, true},
		{"fast", dragonfly.ExactUGAL, false},
		{"exactly", dragonfly.ExactUGAL, false},
	} {
		got, err := dragonfly.ParseRoutingVariant(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseRoutingVariant(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if exact, shardable := dragonfly.ExactUGAL.String(), dragonfly.ShardableUGAL.String(); exact != "exact" || shardable != "shardable" {
		t.Errorf("variant String() = %q, %q; want exact, shardable", exact, shardable)
	}
}

// TestParseStaleness pins the -staleness flag grammar.
func TestParseStaleness(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
		ok   bool
	}{
		{"", 1, true},
		{"1", 1, true},
		{"4", 4, true},
		{" 16 ", 16, true},
		{"4096", 4096, true},
		{"staleness=2", 2, true},
		{"STALENESS=8", 8, true},
		{"0", 0, false},
		{"-3", 0, false},
		{"4097", 0, false},
		{"two", 0, false},
		{"3.5", 0, false},
		{"staleness=", 0, false},
		{"k=4", 0, false},
	} {
		got, err := dragonfly.ParseStaleness(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseStaleness(%q) = %d, %v; want %d, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// TestParseRoutingVariantSpec pins the combined variant:staleness grammar of
// the -routing-variant flag.
func TestParseRoutingVariantSpec(t *testing.T) {
	for _, tc := range []struct {
		in    string
		wantV dragonfly.RoutingVariant
		wantK int
		ok    bool
	}{
		{"", dragonfly.ExactUGAL, 1, true},
		{"exact", dragonfly.ExactUGAL, 1, true},
		{"shardable", dragonfly.ShardableUGAL, 1, true},
		{"shardable:staleness=1", dragonfly.ShardableUGAL, 1, true},
		{"shardable:staleness=4", dragonfly.ShardableUGAL, 4, true},
		{"SHARDED: Staleness=2 ", dragonfly.ShardableUGAL, 2, true},
		{"exact:staleness=1", dragonfly.ExactUGAL, 1, true},
		{"exact:staleness=4", dragonfly.ExactUGAL, 0, false},
		{"shardable:staleness=0", dragonfly.ExactUGAL, 0, false},
		{"shardable:staleness=4097", dragonfly.ExactUGAL, 0, false},
		{"shardable:k=4", dragonfly.ExactUGAL, 0, false},
		{"shardable:", dragonfly.ExactUGAL, 0, false},
		{"bogus:staleness=2", dragonfly.ExactUGAL, 0, false},
	} {
		v, k, err := dragonfly.ParseRoutingVariantSpec(tc.in)
		if (err == nil) != tc.ok || v != tc.wantV || (tc.ok && k != tc.wantK) {
			t.Errorf("ParseRoutingVariantSpec(%q) = %v, %d, %v; want %v, %d, ok=%v",
				tc.in, v, k, err, tc.wantV, tc.wantK, tc.ok)
		}
	}
}

// TestShardableJobRunCancelNoGoroutineLeak extends the goroutine-leak
// contract to the variant: a Job.Run cancelled mid-run with conforming
// packet events in flight releases every rank goroutine and window worker.
func TestShardableJobRunCancelNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	sys := shardableSystem(t, dragonfly.Small, 23, 4)
	job, err := sys.Allocate(dragonfly.GroupStriped, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = job.Run(&workloads.Alltoall{MessageBytes: 4 << 10, Iterations: 1},
		dragonfly.RunOptions{
			Iterations: 50,
			Context:    ctx,
			HostNoise: func(rank int) int64 {
				cancel()
				return 0
			},
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled shardable Job.Run returned %v, want context.Canceled", err)
	}
	testutil.WaitGoroutines(t, base)
}

// TestShardableRunConcurrentCancelNoGoroutineLeak covers the multi-job
// scheduler path with the shardable variant active, cancelled mid-run.
func TestShardableRunConcurrentCancelNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	sys := shardableSystem(t, dragonfly.Small, 24, 2)
	victim, err := sys.Allocate(dragonfly.GroupStriped, 8)
	if err != nil {
		t.Fatal(err)
	}
	neighbor, err := sys.Allocate(dragonfly.GroupStriped, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runs := []dragonfly.JobRun{
		{
			Job:      victim,
			Workload: &workloads.Alltoall{MessageBytes: 4 << 10, Iterations: 1},
			Options: dragonfly.RunOptions{
				Iterations: 50,
				Context:    ctx,
				HostNoise: func(rank int) int64 {
					cancel()
					return 0
				},
			},
		},
		{
			Job:      neighbor,
			Workload: workloads.NewHalo3D(8, 128, 2),
			Options:  dragonfly.RunOptions{Iterations: 2},
		},
	}
	if _, err := sys.RunConcurrent(runs); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancellation returned %v, want context.Canceled", err)
	}
	testutil.WaitGoroutines(t, base)
}
