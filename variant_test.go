package dragonfly_test

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"dragonfly"
	"dragonfly/internal/testutil"
	"dragonfly/internal/workloads"
)

// Golden hashes of the ShardableUGAL variant — its own family, separate from
// every ExactUGAL golden: the variant's byte stream differs from the paper's
// serial algorithm by construction (per-group RNG streams, bounded-staleness
// congestion replicas) but is itself pinned: byte-identical across shard
// counts {1, 2, 4, 8} and across the Job.Run and RunConcurrent drive modes.
// Captured at PR 8 alongside the unchanged ExactUGAL goldens.
const (
	goldenShardableSmallRun        = "3f94cf41756d7e1e594a134da406671c8ec2232f9bf49dbae5aea8dc5c918ebe"
	goldenShardableMediumRun       = "64ff6cb1f226889340911ad897ab0171a6707444dc8c730e2af74d5021278710"
	goldenShardableSmallConcurrent = "927f9e056b9d4b26c7e1d4909497097b271b3ce175bfda31de9bc4f31befb809"
)

// shardableSystem builds a ShardableUGAL system on the given geometry with
// the requested intra-run shard count.
func shardableSystem(t *testing.T, g dragonfly.Geometry, seed int64, shards int) *dragonfly.System {
	t.Helper()
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(g),
		dragonfly.WithSeed(seed),
		dragonfly.WithShards(shards),
		dragonfly.WithRoutingVariant(dragonfly.ShardableUGAL),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestShardableByteIdenticalAcrossShards is the variant's determinism bar:
// on each rung the rendered Result of the same job is byte-identical at
// every shard count, pinned by the variant's own golden SHA256.
func TestShardableByteIdenticalAcrossShards(t *testing.T) {
	for _, tc := range []struct {
		rung   string
		geom   dragonfly.Geometry
		golden string
	}{
		{"small", dragonfly.Small, goldenShardableSmallRun},
		{"medium", dragonfly.Medium, goldenShardableMediumRun},
	} {
		tc := tc
		t.Run(tc.rung, func(t *testing.T) {
			want := runLadderJob(t, shardableSystem(t, tc.geom, 7, 1))
			if got := sha(want); got != tc.golden {
				t.Errorf("shards=1 drifted from the shardable golden hash on %s:\n got %s\nwant %s",
					tc.rung, got, tc.golden)
			}
			for _, shards := range []int{2, 4, 8} {
				sys := shardableSystem(t, tc.geom, 7, shards)
				if got := runLadderJob(t, sys); got != want {
					t.Fatalf("shards=%d (effective %d) diverges on %s:\n got: %s\nwant: %s",
						shards, sys.Shards(), tc.rung, got, want)
				}
			}
		})
	}
}

// TestShardableRunConcurrentByteIdentical covers the second drive mode: the
// MPI scheduler's stepUntil path (Step-driven windows) must produce the same
// byte stream as Job.Run-driven windows at every shard count.
func TestShardableRunConcurrentByteIdentical(t *testing.T) {
	run := func(shards int) string {
		sys := shardableSystem(t, dragonfly.Small, 11, shards)
		victim, err := sys.Allocate(dragonfly.GroupStriped, 16)
		if err != nil {
			t.Fatal(err)
		}
		neighbor, err := sys.Allocate(dragonfly.GroupStriped, 16)
		if err != nil {
			t.Fatal(err)
		}
		results, err := sys.RunConcurrent([]dragonfly.JobRun{
			{
				Job:      victim,
				Workload: &workloads.Alltoall{MessageBytes: 2 << 10, Iterations: 1},
				Options:  dragonfly.RunOptions{Iterations: 2},
			},
			{
				Job:      neighbor,
				Workload: workloads.NewHalo3D(16, 256, 2),
				Options: dragonfly.RunOptions{
					Routing:    dragonfly.StaticRouting(dragonfly.AdaptiveHighBias),
					Iterations: 2,
				},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return renderResults(results)
	}
	want := run(1)
	if got := sha(want); got != goldenShardableSmallConcurrent {
		t.Errorf("shards=1 RunConcurrent drifted from the shardable golden hash:\n got %s\nwant %s",
			got, goldenShardableSmallConcurrent)
	}
	for _, shards := range []int{2, 4, 8} {
		if got := run(shards); got != want {
			t.Fatalf("RunConcurrent shards=%d diverges:\n got: %s\nwant: %s", shards, got, want)
		}
	}
}

// TestShardableDiffersFromExact sanity-checks that the variant is a real
// model change: per-group RNG streams and replicated congestion views must
// not happen to reproduce the exact serial byte stream.
func TestShardableDiffersFromExact(t *testing.T) {
	exact := runLadderJob(t, shardedSystem(t, dragonfly.Small, 7, 1))
	shardable := runLadderJob(t, shardableSystem(t, dragonfly.Small, 7, 1))
	if exact == shardable {
		t.Fatal("ShardableUGAL reproduced the ExactUGAL byte stream; the variants should differ by construction")
	}
}

// TestShardableResetMatchesFresh pins the harness pooling contract for the
// variant: Reset reruns byte-identically, keeping the lane RNG streams and
// congestion replicas in their freshly-built state.
func TestShardableResetMatchesFresh(t *testing.T) {
	sys := shardableSystem(t, dragonfly.Small, 9, 2)
	want := runLadderJob(t, sys)
	if err := sys.Reset(9); err != nil {
		t.Fatal(err)
	}
	if got := runLadderJob(t, sys); got != want {
		t.Fatalf("shardable rerun after Reset diverges:\n got: %s\nwant: %s", got, want)
	}
	// Reset to a different seed must also match a fresh system at that seed.
	if err := sys.Reset(10); err != nil {
		t.Fatal(err)
	}
	reseeded := runLadderJob(t, sys)
	fresh := runLadderJob(t, shardableSystem(t, dragonfly.Small, 10, 2))
	if reseeded != fresh {
		t.Fatalf("shardable Reset(10) diverges from a fresh seed-10 system:\n got: %s\nwant: %s",
			reseeded, fresh)
	}
}

// TestShardableDriverResolution pins the variant's driver contract: the
// sharded driver is always attached (even at an effective shard count of 1,
// so shard count never changes the byte stream), exact-variant systems keep
// the old resolution ladder, and single-group geometries are rejected
// loudly instead of silently degrading to a serial dialect.
func TestShardableDriverResolution(t *testing.T) {
	sys := shardableSystem(t, dragonfly.Small, 1, 1)
	if sys.Sharded() == nil {
		t.Fatal("ShardableUGAL system has no sharded driver at WithShards(1)")
	}
	if got := sys.Shards(); got != 1 {
		t.Fatalf("WithShards(1) → Shards() = %d, want 1", got)
	}
	if got := sys.RoutingVariant(); got != dragonfly.ShardableUGAL {
		t.Fatalf("RoutingVariant() = %v, want ShardableUGAL", got)
	}
	if got := dragonfly.MustNew().RoutingVariant(); got != dragonfly.ExactUGAL {
		t.Fatalf("default RoutingVariant() = %v, want ExactUGAL", got)
	}
	if _, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.SmallGeometry(1)),
		dragonfly.WithRoutingVariant(dragonfly.ShardableUGAL),
	); err == nil {
		t.Fatal("ShardableUGAL accepted a single-group geometry")
	}
}

// TestParseRoutingVariant pins the CLI grammar of the -routing-variant flag.
func TestParseRoutingVariant(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want dragonfly.RoutingVariant
		ok   bool
	}{
		{"", dragonfly.ExactUGAL, true},
		{"exact", dragonfly.ExactUGAL, true},
		{" Exact ", dragonfly.ExactUGAL, true},
		{"ugal", dragonfly.ExactUGAL, true},
		{"serial", dragonfly.ExactUGAL, true},
		{"shardable", dragonfly.ShardableUGAL, true},
		{"SHARDABLE", dragonfly.ShardableUGAL, true},
		{"sharded", dragonfly.ShardableUGAL, true},
		{"parallel", dragonfly.ShardableUGAL, true},
		{"fast", dragonfly.ExactUGAL, false},
		{"exactly", dragonfly.ExactUGAL, false},
	} {
		got, err := dragonfly.ParseRoutingVariant(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseRoutingVariant(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if exact, shardable := dragonfly.ExactUGAL.String(), dragonfly.ShardableUGAL.String(); exact != "exact" || shardable != "shardable" {
		t.Errorf("variant String() = %q, %q; want exact, shardable", exact, shardable)
	}
}

// TestShardableJobRunCancelNoGoroutineLeak extends the goroutine-leak
// contract to the variant: a Job.Run cancelled mid-run with conforming
// packet events in flight releases every rank goroutine and window worker.
func TestShardableJobRunCancelNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	sys := shardableSystem(t, dragonfly.Small, 23, 4)
	job, err := sys.Allocate(dragonfly.GroupStriped, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = job.Run(&workloads.Alltoall{MessageBytes: 4 << 10, Iterations: 1},
		dragonfly.RunOptions{
			Iterations: 50,
			Context:    ctx,
			HostNoise: func(rank int) int64 {
				cancel()
				return 0
			},
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled shardable Job.Run returned %v, want context.Canceled", err)
	}
	testutil.WaitGoroutines(t, base)
}

// TestShardableRunConcurrentCancelNoGoroutineLeak covers the multi-job
// scheduler path with the shardable variant active, cancelled mid-run.
func TestShardableRunConcurrentCancelNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	sys := shardableSystem(t, dragonfly.Small, 24, 2)
	victim, err := sys.Allocate(dragonfly.GroupStriped, 8)
	if err != nil {
		t.Fatal(err)
	}
	neighbor, err := sys.Allocate(dragonfly.GroupStriped, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runs := []dragonfly.JobRun{
		{
			Job:      victim,
			Workload: &workloads.Alltoall{MessageBytes: 4 << 10, Iterations: 1},
			Options: dragonfly.RunOptions{
				Iterations: 50,
				Context:    ctx,
				HostNoise: func(rank int) int64 {
					cancel()
					return 0
				},
			},
		},
		{
			Job:      neighbor,
			Workload: workloads.NewHalo3D(8, 128, 2),
			Options:  dragonfly.RunOptions{Iterations: 2},
		},
	}
	if _, err := sys.RunConcurrent(runs); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancellation returned %v, want context.Canceled", err)
	}
	testutil.WaitGoroutines(t, base)
}
