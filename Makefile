GO ?= go
GOFMT ?= gofmt

.PHONY: all build vet fmt-check examples test race bench bench-suite bench-smoke fuzz quick

all: build vet fmt-check examples test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt-check fails when any file is not gofmt-clean (CI runs it; use
# `gofmt -w .` to fix).
fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# examples compiles every example binary explicitly. The examples are plain
# `package main` directories that only the facade API keeps honest, so they
# get their own gate against silent drift during API churn.
examples:
	@for d in examples/*/; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null ./$$d || exit 1; \
	done

test:
	$(GO) test ./...

# race runs the harness, facade, rank-scheduler, batch-scheduler, sharded
# engine/fabric and cmd tests under the race detector (the full experiment
# suite under -race is slow; CI runs it, locally target the pool, the facade
# the pool reuses systems through, the concurrent multi-job path, and the
# parallel horizon windows of the sharded engine). The facade tests include
# the ShardableUGAL leak/cancellation regressions (variant_test.go), so the
# conforming-parallel packet path and its mid-run teardown run under -race
# at every shard count the tests cover.
race:
	$(GO) test -race ./internal/arrival/... ./internal/harness/... ./internal/mpi/... \
		./internal/sched/... ./internal/sim/... ./internal/network/... . ./cmd/...

# bench runs the full 19-benchmark suite (one testing.B per paper figure/
# table plus the serial/parallel executor pair) with -benchmem and stores the
# raw `go test -json` stream as BENCH_$(BENCH_LABEL).json. The benchmark
# result lines inside are standard Go benchmark format; extract them for
# benchstat with:
#   jq -r 'select(.Action=="output") | .Output' BENCH_a.json > a.txt
#   benchstat a.txt b.txt
# See EXPERIMENTS.md "Benchmarking & regression methodology".
BENCH_LABEL ?= local
BENCH_PATTERN ?= .
BENCH_COUNT ?= 1
# (Direct redirection, not a tee pipeline: the target must fail — and not
# leave a half-written artifact looking authoritative — when the run fails.)
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime 1x \
		-count $(BENCH_COUNT) -timeout 60m -json . > BENCH_$(BENCH_LABEL).json \
		|| { rm -f BENCH_$(BENCH_LABEL).json; exit 1; }
	@tail -n 5 BENCH_$(BENCH_LABEL).json

# bench-suite is the quick serial-vs-parallel executor comparison.
bench-suite:
	$(GO) test -bench Suite -benchtime 1x -run '^$$' .

# bench-smoke runs BenchmarkSuiteSerial once and fails when allocs/op
# regresses more than 10% over the checked-in budget (BENCH_budget.txt).
# CI runs it; after an intentional allocation change, update the budget file
# with the new allocs/op value and justify it in the PR.
bench-smoke:
	./scripts/bench_smoke.sh

# fuzz smoke-runs each native Go fuzz target for a short window (seed corpora
# are checked in under testdata/fuzz). CI runs it; raise FUZZTIME locally for
# a longer hunt, e.g. `make fuzz FUZZTIME=5m`.
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParseRouting$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzParseGeometry$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzParseShards$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzParseRoutingVariant$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzParseStaleness$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzParseDecisionTrace$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzParseArrival$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzParsePolicy$$' -fuzztime $(FUZZTIME) ./internal/alloc

# quick is the fastest end-to-end smoke: build plus one tiny experiment.
quick: build
	$(GO) run ./cmd/experiments -exp fig3 -quick -iterations 2
