GO ?= go
GOFMT ?= gofmt

.PHONY: all build vet fmt-check examples test race bench quick

all: build vet fmt-check examples test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt-check fails when any file is not gofmt-clean (CI runs it; use
# `gofmt -w .` to fix).
fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# examples compiles every example binary explicitly. The examples are plain
# `package main` directories that only the facade API keeps honest, so they
# get their own gate against silent drift during API churn.
examples:
	@for d in examples/*/; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null ./$$d || exit 1; \
	done

test:
	$(GO) test ./...

# race runs the harness and cmd tests under the race detector (the full
# experiment suite under -race is slow; CI runs it, locally target the pool).
race:
	$(GO) test -race ./internal/harness/... ./cmd/...

# bench compares the serial and parallel trial executors on the suite run.
bench:
	$(GO) test -bench Suite -benchtime 1x -run '^$$' .

# quick is the fastest end-to-end smoke: build plus one tiny experiment.
quick: build
	$(GO) run ./cmd/experiments -exp fig3 -quick -iterations 2
