GO ?= go

.PHONY: all build vet test race bench quick

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the harness and cmd tests under the race detector (the full
# experiment suite under -race is slow; CI runs it, locally target the pool).
race:
	$(GO) test -race ./internal/harness/... ./cmd/...

# bench compares the serial and parallel trial executors on the suite run.
bench:
	$(GO) test -bench Suite -benchtime 1x -run '^$$' .

# quick is the fastest end-to-end smoke: build plus one tiny experiment.
quick: build
	$(GO) run ./cmd/experiments -exp fig3 -quick -iterations 2
