package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestNoisescanSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "alltoall", "-size", "2048", "-nodes", "8", "-groups", "3",
		"-noise", "bully", "-noise-nodes", "6", "-iterations", "1", "-interval", "20000",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"measured job", "background job", "samples:", "group-to-group"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestNoisescanNoNoiseAppAware(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "pingpong", "-size", "4096", "-nodes", "4", "-groups", "2",
		"-noise", "none", "-routing", "appaware", "-iterations", "1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "iteration 0") {
		t.Fatalf("output missing iteration line:\n%s", out.String())
	}
}

func TestNoisescanRejectsUnknownWorkload(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workload", "nope"}, &out); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestNoisescanRejectsUnknownRouting(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-routing", "nope", "-nodes", "4", "-groups", "2"}, &out); err == nil {
		t.Fatal("expected error for unknown routing mode")
	}
}

func TestNoisescanCSVExport(t *testing.T) {
	var out bytes.Buffer
	path := t.TempDir() + "/telemetry.csv"
	err := run([]string{
		"-workload", "barrier", "-nodes", "4", "-groups", "2", "-noise", "none",
		"-iterations", "1", "-csv", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "written to") {
		t.Fatalf("CSV confirmation missing:\n%s", out.String())
	}
}

func TestNoisescanCompareRoutingModes(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "alltoall", "-size", "1024", "-nodes", "6", "-groups", "2",
		"-noise", "uniform", "-noise-nodes", "4", "-iterations", "1",
		"-routing", "ADAPTIVE_0,ADAPTIVE_3", "-parallel", "2", "-timeout", "5m",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"routing comparison", "ADAPTIVE_0", "ADAPTIVE_3", "median cycles"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("comparison output missing %q:\n%s", want, out.String())
		}
	}
}

func TestNoisescanCompareRejectsUnknownMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-routing", "ADAPTIVE_0,nope", "-nodes", "4", "-groups", "2"}, &out); err == nil {
		t.Fatal("expected error for unknown routing mode in a comparison list")
	}
}
