// Command noisescan runs a workload under configurable cross-traffic while a
// fabric-wide telemetry collector samples every router tile and NIC, and then
// prints the congestion time series, the hottest links and the group-to-group
// traffic heatmap. It is the system-operator companion to dragonsim: dragonsim
// shows what the application sees (NIC counters), noisescan shows what the
// machine sees (tile counters), the distinction §3.2 of the paper insists on.
//
// The scan runs through the trial harness (internal/harness): -routing
// accepts a comma-separated list of modes, each mode becomes one trial on its
// own private system, and the trials fan out across cores (-parallel) with an
// optional wall-clock budget (-timeout). A single mode prints the full
// telemetry detail; several modes print a side-by-side comparison table.
//
// Usage:
//
//	noisescan -workload alltoall -size 16384 -nodes 32 -routing ADAPTIVE_0 -noise bully
//	noisescan -workload halo3d -size 512 -nodes 64 -routing ADAPTIVE_3 -interval 25000
//	noisescan -workload alltoall -routing ADAPTIVE_0,ADAPTIVE_3,appaware -parallel 3
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"dragonfly"
	"dragonfly/internal/alloc"
	"dragonfly/internal/harness"
	"dragonfly/internal/stats"
	"dragonfly/internal/telemetry"
	"dragonfly/internal/topo"
	"dragonfly/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "noisescan:", err)
		os.Exit(1)
	}
}

// scanConfig carries the flag values one scan trial needs.
type scanConfig struct {
	workload     string
	size         int64
	nodes        int
	noiseKind    string
	noiseNodes   int
	iterations   int
	interval     int64
	topLinks     int
	hotThreshold float64
}

// scanResult is the payload of one scan trial.
type scanResult struct {
	Mode         string
	WorkloadName string
	Job          string
	NoiseDesc    string
	Times        []int64
	Col          *telemetry.Collector
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("noisescan", flag.ContinueOnError)
	var (
		workloadName = fs.String("workload", "alltoall", "measured workload name")
		size         = fs.Int64("size", 16<<10, "workload size parameter")
		nodes        = fs.Int("nodes", 32, "measured job size (ranks)")
		groups       = fs.Int("groups", 4, "number of Dragonfly groups")
		fullAries    = fs.Bool("full-aries", false, "use full-size Aries groups")
		routingModes = fs.String("routing", "ADAPTIVE_0", "routing mode(s) for the measured job, comma-separated (or appaware, default); several modes are compared side by side")
		noiseKind    = fs.String("noise", "uniform", "background pattern: uniform, hotspot, bully, burst, none")
		noiseNodesN  = fs.Int("noise-nodes", 16, "background job size")
		iterations   = fs.Int("iterations", 3, "measured workload repetitions")
		interval     = fs.Int64("interval", 50_000, "telemetry sampling interval (cycles)")
		topLinks     = fs.Int("top-links", 5, "hottest links listed per report")
		hotThreshold = fs.Float64("hot-threshold", 0.8, "utilization above which an interval counts as a hotspot")
		seed         = fs.Int64("seed", 1, "random seed")
		csvPath      = fs.String("csv", "", "write the per-interval telemetry table to this CSV file (per mode when comparing)")
		parallel     = fs.Int("parallel", 0, "trial worker goroutines (0 = all cores, 1 = serial)")
		timeout      = fs.Duration("timeout", 0, "abort the scan after this wall-clock duration (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var modes []string
	for _, m := range strings.Split(*routingModes, ",") {
		if m = strings.TrimSpace(m); m != "" {
			modes = append(modes, m)
		}
	}
	if len(modes) == 0 {
		return fmt.Errorf("no routing modes given")
	}
	// Fail fast on unknown modes before building any system.
	for _, m := range modes {
		if _, err := dragonfly.ParseRouting(m); err != nil {
			return err
		}
	}

	tcfg := dragonfly.MediumGeometry(*groups)
	if *fullAries {
		tcfg = dragonfly.AriesGeometry(*groups)
	}
	cfg := scanConfig{
		workload:     *workloadName,
		size:         *size,
		nodes:        *nodes,
		noiseKind:    *noiseKind,
		noiseNodes:   *noiseNodesN,
		iterations:   *iterations,
		interval:     *interval,
		topLinks:     *topLinks,
		hotThreshold: *hotThreshold,
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Pick the measured job's nodes once, from the suite seed, so every
	// compared routing mode runs on the same allocation and the comparison
	// differs only by routing (plus each mode's private background noise).
	t, err := topo.New(tcfg)
	if err != nil {
		return err
	}
	job, err := alloc.Allocate(t, alloc.GroupStriped, *nodes, rand.New(rand.NewSource(*seed)), nil)
	if err != nil {
		return err
	}

	specs := make([]harness.TrialSpec, len(modes))
	for i, mode := range modes {
		specs[i] = harness.TrialSpec{
			ID:       "noisescan/" + mode,
			Meta:     mode,
			Geometry: tcfg,
			Body:     scanBody(mode, cfg, job.Nodes()),
		}
	}
	results, err := harness.Run(ctx, *seed, *parallel, specs)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "system: %d nodes / %d routers / %d groups\n",
		tcfg.Nodes(), tcfg.Routers(), tcfg.Groups)
	if len(modes) == 1 {
		return renderDetailed(out, results[0].Value.(*scanResult), cfg, *csvPath)
	}
	return renderComparison(out, results, cfg, *csvPath)
}

// scanBody builds the trial body measuring one routing mode with telemetry.
// jobNodes is the shared measured-job allocation, identical across modes.
func scanBody(mode string, cfg scanConfig, jobNodes []topo.NodeID) func(context.Context, *harness.Env) (any, error) {
	return func(ctx context.Context, e *harness.Env) (any, error) {
		rc, err := dragonfly.ParseRouting(mode)
		if err != nil {
			return nil, err
		}
		job := e.Sys.JobFromNodes(jobNodes)
		var noiseDesc string
		if cfg.noiseKind != "none" {
			pattern, err := dragonfly.ParseNoisePattern(cfg.noiseKind)
			if err != nil {
				return nil, err
			}
			if g := e.Sys.StartNoise(dragonfly.NoiseConfig{Pattern: pattern, Nodes: cfg.noiseNodes}); g != nil {
				noiseDesc = fmt.Sprintf("%d nodes, %s pattern", g.NumNodes(), pattern)
			}
		}

		w, err := dragonfly.NewWorkload(cfg.workload, job.Size(), cfg.size)
		if err != nil {
			return nil, err
		}
		col, err := telemetry.NewCollector(e.Fabric, telemetry.Config{
			IntervalCycles:   cfg.interval,
			TopLinks:         cfg.topLinks,
			TrackGroupMatrix: true,
		})
		if err != nil {
			return nil, err
		}
		col.Start(harness.DefaultHorizon)

		res, err := job.Run(w, dragonfly.RunOptions{
			Routing:    rc,
			Iterations: cfg.iterations,
			Context:    ctx,
		})
		if err != nil {
			return nil, err
		}
		col.Stop()
		col.Flush()
		return &scanResult{
			Mode:         mode,
			WorkloadName: w.Name(),
			Job:          job.String(),
			NoiseDesc:    noiseDesc,
			Times:        res.Times,
			Col:          col,
		}, nil
	}
}

// renderDetailed prints the full single-mode report: iteration times, the
// per-interval telemetry table, congestion summary, hottest links and the
// group-to-group heatmap.
func renderDetailed(out io.Writer, r *scanResult, cfg scanConfig, csvPath string) error {
	fmt.Fprintf(out, "measured job: %s\n", r.Job)
	if r.NoiseDesc != "" {
		fmt.Fprintf(out, "background job: %s\n", r.NoiseDesc)
	}
	for i, t := range r.Times {
		fmt.Fprintf(out, "iteration %d: %d cycles\n", i, t)
	}
	col := r.Col
	table := col.Table(fmt.Sprintf("telemetry: %s size=%d routing=%s", r.WorkloadName, cfg.size, r.Mode))
	if err := table.Render(out); err != nil {
		return err
	}
	if csvPath != "" {
		if err := table.SaveCSV(csvPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "per-interval telemetry written to %s\n", csvPath)
	}

	maxUtil, _ := col.Series("max-util")
	stall, _ := col.Series("stall-ratio")
	fmt.Fprintf(out, "\nsamples: %d, mean max-utilization: %.3f, peak: %.3f, hotspot intervals (>=%.0f%%): %d, mean stall ratio: %.3f\n",
		len(col.Samples()), stats.Mean(maxUtil), stats.Max(maxUtil),
		cfg.hotThreshold*100, len(col.HotspotIntervals(cfg.hotThreshold)), stats.Mean(stall))

	if last := lastSampleWithHotLinks(col); last != nil {
		fmt.Fprintf(out, "\nhottest links of the last active interval [%d, %d):\n", last.Start, last.End)
		for _, h := range last.Hottest {
			fmt.Fprintf(out, "  link %d (%s %d->%d): util=%.3f flits=%d\n",
				h.Link.ID, h.Link.Type, h.Link.Src, h.Link.Dst, h.Utilization, h.Flits)
		}
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, telemetry.RenderGroupHeatmap(col.AggregateGroupMatrix()))
	return nil
}

// renderComparison prints the side-by-side summary of a multi-mode scan.
func renderComparison(out io.Writer, results []harness.Result, cfg scanConfig, csvPath string) error {
	table := trace.NewTable(
		fmt.Sprintf("routing comparison: %s size=%d, %d iterations per mode", cfg.workload, cfg.size, cfg.iterations),
		"routing", "median cycles", "mean max-util", "peak max-util",
		fmt.Sprintf("hotspot intervals (>=%.0f%%)", cfg.hotThreshold*100),
		"mean stall ratio", "samples")
	for _, res := range results {
		r := res.Value.(*scanResult)
		times := make([]float64, len(r.Times))
		for i, t := range r.Times {
			times[i] = float64(t)
		}
		maxUtil, _ := r.Col.Series("max-util")
		stall, _ := r.Col.Series("stall-ratio")
		table.AddRow(r.Mode, stats.Median(times),
			stats.Mean(maxUtil), stats.Max(maxUtil),
			len(r.Col.HotspotIntervals(cfg.hotThreshold)),
			stats.Mean(stall), len(r.Col.Samples()))
		if csvPath != "" {
			path := csvPath + "." + strings.ReplaceAll(r.Mode, "/", "_")
			t := r.Col.Table(fmt.Sprintf("telemetry: %s size=%d routing=%s", r.WorkloadName, cfg.size, r.Mode))
			if err := t.SaveCSV(path); err != nil {
				return err
			}
			fmt.Fprintf(out, "per-interval telemetry for %s written to %s\n", r.Mode, path)
		}
	}
	fmt.Fprintf(out, "measured job (same allocation every mode): %s\n", results[0].Value.(*scanResult).Job)
	if nd := results[0].Value.(*scanResult).NoiseDesc; nd != "" {
		fmt.Fprintf(out, "background job: %s (freshly placed per mode)\n", nd)
	}
	return table.Render(out)
}

// lastSampleWithHotLinks returns the most recent sample that recorded hot
// links, or nil.
func lastSampleWithHotLinks(col *telemetry.Collector) *telemetry.Sample {
	samples := col.Samples()
	for i := len(samples) - 1; i >= 0; i-- {
		if len(samples[i].Hottest) > 0 {
			return &samples[i]
		}
	}
	return nil
}
