// Command noisescan runs a workload under configurable cross-traffic while a
// fabric-wide telemetry collector samples every router tile and NIC, and then
// prints the congestion time series, the hottest links and the group-to-group
// traffic heatmap. It is the system-operator companion to dragonsim: dragonsim
// shows what the application sees (NIC counters), noisescan shows what the
// machine sees (tile counters), the distinction §3.2 of the paper insists on.
//
// Usage:
//
//	noisescan -workload alltoall -size 16384 -nodes 32 -routing ADAPTIVE_0 -noise bully
//	noisescan -workload halo3d -size 512 -nodes 64 -routing ADAPTIVE_3 -interval 25000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
	"dragonfly/internal/telemetry"
	"dragonfly/internal/topo"
	"dragonfly/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "noisescan:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("noisescan", flag.ContinueOnError)
	var (
		workloadName = fs.String("workload", "alltoall", "measured workload name")
		size         = fs.Int64("size", 16<<10, "workload size parameter")
		nodes        = fs.Int("nodes", 32, "measured job size (ranks)")
		groups       = fs.Int("groups", 4, "number of Dragonfly groups")
		fullAries    = fs.Bool("full-aries", false, "use full-size Aries groups")
		routingMode  = fs.String("routing", "ADAPTIVE_0", "routing mode for the measured job (or appaware)")
		noiseKind    = fs.String("noise", "uniform", "background pattern: uniform, hotspot, bully, burst, none")
		noiseNodesN  = fs.Int("noise-nodes", 16, "background job size")
		iterations   = fs.Int("iterations", 3, "measured workload repetitions")
		interval     = fs.Int64("interval", 50_000, "telemetry sampling interval (cycles)")
		topLinks     = fs.Int("top-links", 5, "hottest links listed per report")
		hotThreshold = fs.Float64("hot-threshold", 0.8, "utilization above which an interval counts as a hotspot")
		seed         = fs.Int64("seed", 1, "random seed")
		csvPath      = fs.String("csv", "", "write the per-interval telemetry table to this CSV file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tcfg topo.Config
	if *fullAries {
		tcfg = topo.AriesConfig(*groups)
	} else {
		tcfg = topo.SmallConfig(*groups)
		tcfg.BladesPerChassis = 8
		tcfg.GlobalLinksPerRouter = 4
	}
	t, err := topo.New(tcfg)
	if err != nil {
		return err
	}
	pol, err := routing.NewPolicy(t, routing.DefaultParams())
	if err != nil {
		return err
	}
	engine := sim.NewEngine(*seed)
	fab, err := network.New(engine, t, pol, network.DefaultConfig())
	if err != nil {
		return err
	}
	job, err := alloc.Allocate(t, alloc.GroupStriped, *nodes, engine.Rand(), nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "system: %d nodes / %d routers / %d groups; measured job: %s\n",
		t.NumNodes(), t.NumRouters(), t.Config().Groups, job)

	if *noiseKind != "none" {
		pattern, err := noise.ParsePattern(*noiseKind)
		if err != nil {
			return err
		}
		ncfg := noise.DefaultGeneratorConfig()
		ncfg.Pattern = pattern
		ncfg.Seed = *seed + 1
		na, err := alloc.Allocate(t, alloc.RandomScatter, *noiseNodesN, engine.Rand(), alloc.ExcludeSet(job))
		if err != nil {
			return fmt.Errorf("allocating background job: %w", err)
		}
		g, err := noise.FromAllocation(fab, na, ncfg)
		if err != nil {
			return err
		}
		g.Start(1 << 50)
		fmt.Fprintf(out, "background job: %d nodes, %s pattern\n", na.Size(), pattern)
	}

	var provider func(int) mpi.RoutingProvider
	if *routingMode == "appaware" {
		provider = func(int) mpi.RoutingProvider {
			return mpi.AppAwareRouting{Selector: core.MustNew(core.DefaultConfig())}
		}
	} else if *routingMode == "default" {
		provider = func(int) mpi.RoutingProvider { return mpi.DefaultRouting() }
	} else {
		mode, err := routing.ParseMode(*routingMode)
		if err != nil {
			return err
		}
		provider = func(int) mpi.RoutingProvider { return mpi.StaticRouting{Mode: mode} }
	}

	w, err := workloads.New(*workloadName, job.Size(), *size)
	if err != nil {
		return err
	}
	comm, err := mpi.NewComm(fab, job, mpi.Config{Routing: provider})
	if err != nil {
		return err
	}

	col, err := telemetry.NewCollector(fab, telemetry.Config{
		IntervalCycles:   *interval,
		TopLinks:         *topLinks,
		TrackGroupMatrix: true,
	})
	if err != nil {
		return err
	}
	col.Start(1 << 50)

	for i := 0; i < *iterations; i++ {
		start := engine.Now()
		if err := comm.Run(w.Run); err != nil {
			return err
		}
		for r := 0; r < comm.Size(); r++ {
			if err := comm.Rank(r).Err(); err != nil {
				return fmt.Errorf("rank %d: %w", r, err)
			}
		}
		fmt.Fprintf(out, "iteration %d: %d cycles\n", i, engine.Now()-start)
	}
	col.Stop()
	col.Flush()

	table := col.Table(fmt.Sprintf("telemetry: %s size=%d routing=%s", w.Name(), *size, *routingMode))
	if err := table.Render(out); err != nil {
		return err
	}
	if *csvPath != "" {
		if err := table.SaveCSV(*csvPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "per-interval telemetry written to %s\n", *csvPath)
	}

	maxUtil, _ := col.Series("max-util")
	stall, _ := col.Series("stall-ratio")
	fmt.Fprintf(out, "\nsamples: %d, mean max-utilization: %.3f, peak: %.3f, hotspot intervals (>=%.0f%%): %d, mean stall ratio: %.3f\n",
		len(col.Samples()), stats.Mean(maxUtil), stats.Max(maxUtil),
		*hotThreshold*100, len(col.HotspotIntervals(*hotThreshold)), stats.Mean(stall))

	if last := lastSampleWithHotLinks(col); last != nil {
		fmt.Fprintf(out, "\nhottest links of the last active interval [%d, %d):\n", last.Start, last.End)
		for _, h := range last.Hottest {
			fmt.Fprintf(out, "  link %d (%s %d->%d): util=%.3f flits=%d\n",
				h.Link.ID, h.Link.Type, h.Link.Src, h.Link.Dst, h.Utilization, h.Flits)
		}
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, telemetry.RenderGroupHeatmap(col.AggregateGroupMatrix()))
	return nil
}

// lastSampleWithHotLinks returns the most recent sample that recorded hot
// links, or nil.
func lastSampleWithHotLinks(col *telemetry.Collector) *telemetry.Sample {
	samples := col.Samples()
	for i := len(samples) - 1; i >= 0; i-- {
		if len(samples[i].Hottest) > 0 {
			return &samples[i]
		}
	}
	return nil
}
