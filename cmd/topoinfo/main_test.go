package main

import "testing"

func TestRunSmallTopology(t *testing.T) {
	if err := run([]string{"-groups", "3", "-full-aries=false", "-samples", "100"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFullAriesTopology(t *testing.T) {
	if err := run([]string{"-groups", "2", "-samples", "50"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunInvalidGeometry(t *testing.T) {
	if err := run([]string{"-groups", "0"}); err == nil {
		t.Fatal("expected error for zero groups")
	}
}

func TestRunGeometryPreset(t *testing.T) {
	if err := run([]string{"-geometry", "medium", "-samples", "50"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-geometry", "no-such-rung"}); err == nil {
		t.Fatal("expected error for unknown geometry preset")
	}
}

func TestRunLadder(t *testing.T) {
	if err := run([]string{"-ladder"}); err != nil {
		t.Fatal(err)
	}
}
