// Command topoinfo inspects a simulated Aries Dragonfly topology: sizes, link
// counts per tier, the hop-count histogram of minimal paths and the
// allocation-class of sample node pairs. It is useful to sanity check a
// geometry before running experiments on it.
//
// Usage:
//
//	topoinfo -groups 6
//	topoinfo -groups 6 -full-aries -samples 5000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dragonfly"
	"dragonfly/internal/network"
	"dragonfly/internal/topo"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topoinfo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topoinfo", flag.ContinueOnError)
	var (
		groups       = fs.Int("groups", 6, "number of Dragonfly groups")
		fullAries    = fs.Bool("full-aries", true, "use full-size Aries groups (6 chassis x 16 blades x 4 nodes)")
		geometryName = fs.String("geometry", "", "geometry ladder rung or preset (small, medium, large, daint, small:N, medium:N, aries:N); overrides -groups/-full-aries")
		ladder       = fs.Bool("ladder", false, "print the geometry ladder (sizes and adjacency memory per rung) and exit")
		samples      = fs.Int("samples", 2000, "random router pairs sampled for the hop histogram")
		seed         = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ladder {
		return printLadder()
	}

	cfg := dragonfly.SmallGeometry(*groups)
	if *fullAries {
		cfg = dragonfly.AriesGeometry(*groups)
	}
	if *geometryName != "" {
		var err error
		cfg, err = dragonfly.ParseGeometry(*geometryName)
		if err != nil {
			return err
		}
	}
	t, err := topo.New(cfg)
	if err != nil {
		return err
	}

	overview := trace.NewTable("Topology overview", "property", "value")
	overview.AddRow("groups", cfg.Groups)
	overview.AddRow("chassis per group", cfg.ChassisPerGroup)
	overview.AddRow("blades per chassis", cfg.BladesPerChassis)
	overview.AddRow("nodes per blade", cfg.NodesPerBlade)
	overview.AddRow("routers", t.NumRouters())
	overview.AddRow("nodes", t.NumNodes())
	overview.AddRow("directed links", t.NumLinks())
	overview.AddRow("adjacency (CSR) KiB", fmt.Sprintf("%.1f", float64(t.AdjacencyBytes())/1024))
	if err := overview.Render(os.Stdout); err != nil {
		return err
	}

	byType := map[topo.LinkType]int{}
	for _, l := range t.Links() {
		byType[l.Type]++
	}
	links := trace.NewTable("Links per tier", "tier", "directed links")
	for _, lt := range []topo.LinkType{topo.LinkIntraChassis, topo.LinkIntraGroup, topo.LinkGlobal} {
		links.AddRow(lt.String(), byType[lt])
	}
	if err := links.Render(os.Stdout); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	hist := make(map[int]int)
	for i := 0; i < *samples; i++ {
		a := topo.RouterID(rng.Intn(t.NumRouters()))
		b := topo.RouterID(rng.Intn(t.NumRouters()))
		hist[t.MinimalHops(a, b)]++
	}
	hops := trace.NewTable(fmt.Sprintf("Minimal path hop histogram (%d random router pairs)", *samples),
		"hops", "pairs", "fraction")
	for h := 0; h <= topo.MaxMinimalHops; h++ {
		if hist[h] == 0 {
			continue
		}
		hops.AddRow(h, hist[h], float64(hist[h])/float64(*samples))
	}
	if err := hops.Render(os.Stdout); err != nil {
		return err
	}

	classes := trace.NewTable("Sample node pair classification", "node a", "node b", "class")
	for i := 0; i < 5; i++ {
		a := topo.NodeID(rng.Intn(t.NumNodes()))
		b := topo.NodeID(rng.Intn(t.NumNodes()))
		classes.AddRow(int(a), int(b), t.Classify(a, b).String())
	}
	return classes.Render(os.Stdout)
}

// printLadder builds every rung of the geometry ladder and tabulates its
// size, adjacency memory, lookahead horizon, conforming-event fraction and
// window-barrier behaviour — the quick answer to "what does each rung cost
// before I run on it". The lookahead column is the minimum global-link
// latency under the default fabric configuration: the conservative horizon
// the sharded engine (WithShards) advances per window, and 0 for rungs that
// cannot shard. The conforming column is the share of executed events
// eligible for parallel execution under WithRoutingVariant(ShardableUGAL),
// measured by a small probe alltoall on the rung; the remainder (window-
// boundary syncs and the serial residue) stays serial even in the shardable
// variant. The windows/batched/occupancy columns come from the same probe's
// engine window stats: how many horizon windows the run dispatched, what
// share followed another window with no serial event between them
// (back-to-back stretches the persistent workers ride through), and the mean
// number of shards active per window.
func printLadder() error {
	table := trace.NewTable("Geometry ladder",
		"rung", "groups", "routers", "nodes", "directed links", "adjacency (CSR) KiB",
		"lookahead (cycles)", "conforming events %", "windows", "batched %", "mean occupancy")
	for _, rung := range dragonfly.GeometryLadder() {
		t, err := topo.New(rung.Geometry)
		if err != nil {
			return err
		}
		frac, ws, err := probeRung(rung.Geometry)
		if err != nil {
			return err
		}
		batched := 0.0
		if ws.Windows > 0 {
			batched = float64(ws.BatchedWindows) / float64(ws.Windows) * 100
		}
		table.AddRow(rung.Name, rung.Geometry.Groups, t.NumRouters(), t.NumNodes(),
			t.NumLinks(), fmt.Sprintf("%.1f", float64(t.AdjacencyBytes())/1024),
			int64(network.LookaheadCycles(network.DefaultConfig(), t)),
			fmt.Sprintf("%.1f", frac*100), ws.Windows,
			fmt.Sprintf("%.1f", batched), fmt.Sprintf("%.2f", ws.MeanOccupancy))
	}
	return table.Render(os.Stdout)
}

// probeRung probes one rung with a 32-node alltoall under the shardable
// variant (four shards, so the occupancy column is comparable across rungs
// and machines) and reports ConformingExecuted / ExecutedEvents — the share
// of the rung's event stream that horizon-window workers may execute
// concurrently — plus the run's window statistics. The serial residue is the
// replica-sync boundaries (one per lookahead period while traffic flows), so
// the fraction reflects how densely the workload packs packet events into
// each window rather than any serial packet-path work.
func probeRung(g dragonfly.Geometry) (float64, dragonfly.WindowStats, error) {
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(g),
		dragonfly.WithSeed(1),
		dragonfly.WithShards(4),
		dragonfly.WithRoutingVariant(dragonfly.ShardableUGAL),
	)
	if err != nil {
		return 0, dragonfly.WindowStats{}, err
	}
	job, err := sys.Allocate(dragonfly.GroupStriped, 32)
	if err != nil {
		return 0, dragonfly.WindowStats{}, err
	}
	if _, err := job.Run(&workloads.Alltoall{MessageBytes: 8 << 10, Iterations: 1},
		dragonfly.RunOptions{Iterations: 1}); err != nil {
		return 0, dragonfly.WindowStats{}, err
	}
	ws := sys.Sharded().WindowStats()
	total := sys.Engine().ExecutedEvents()
	if total == 0 {
		return 0, ws, nil
	}
	return float64(sys.Sharded().ConformingExecuted()) / float64(total), ws, nil
}
