// Command msgtrace records and replays fabric-wide communication traces.
//
// In record mode it runs a workload on the simulated Dragonfly, captures every
// message transfer through the fabric's delivery observer and writes the trace
// as JSON Lines. In replay mode it loads such a trace and re-injects it onto a
// fresh system — possibly under a different routing mode or with a different
// time scale — and reports the delivered traffic and the NIC-level latency and
// stall statistics. Trace capture plus replay is the usual way to re-examine a
// communication pattern under routing changes without re-running the
// application.
//
// Usage:
//
//	msgtrace -mode record -workload alltoall -size 16384 -nodes 16 -trace trace.jsonl
//	msgtrace -mode replay -trace trace.jsonl -routing ADAPTIVE_3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dragonfly"
	"dragonfly/internal/msglog"
	"dragonfly/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "msgtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("msgtrace", flag.ContinueOnError)
	var (
		mode         = fs.String("mode", "record", "record or replay")
		tracePath    = fs.String("trace", "trace.jsonl", "trace file (written in record mode, read in replay mode)")
		workloadName = fs.String("workload", "alltoall", "workload to record")
		size         = fs.Int64("size", 16<<10, "workload size parameter")
		nodes        = fs.Int("nodes", 16, "job size (ranks) in record mode")
		groups       = fs.Int("groups", 4, "number of Dragonfly groups")
		routingMode  = fs.String("routing", "ADAPTIVE_0", "routing mode (record: for the workload; replay: for the replayed traffic)")
		timeScale    = fs.Float64("time-scale", 1.0, "replay pacing: >1 stretches the original gaps, <1 compresses them")
		seed         = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode2, err := dragonfly.ParseMode(*routingMode)
	if err != nil {
		return err
	}

	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.MediumGeometry(*groups)),
		dragonfly.WithSeed(*seed),
	)
	if err != nil {
		return err
	}

	switch *mode {
	case "record":
		return record(out, sys, *workloadName, *size, *nodes, mode2, *tracePath)
	case "replay":
		return replay(out, sys, *tracePath, mode2, *timeScale)
	default:
		return fmt.Errorf("unknown mode %q (want record or replay)", *mode)
	}
}

// record runs the workload with a log attached and saves the trace.
func record(out io.Writer, sys *dragonfly.System, workloadName string, size int64,
	nodes int, mode dragonfly.Mode, tracePath string) error {

	job, err := sys.Allocate(dragonfly.GroupStriped, nodes)
	if err != nil {
		return err
	}
	w, err := dragonfly.NewWorkload(workloadName, job.Size(), size)
	if err != nil {
		return err
	}
	log := msglog.NewLog()
	log.Attach(sys.Fabric())
	res, err := job.Run(w, dragonfly.RunOptions{Routing: dragonfly.StaticRouting(mode)})
	if err != nil {
		return err
	}
	if err := log.SaveJSONL(tracePath); err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %s: %d messages, %d bytes, %d cycles under %s\n",
		w.Name(), log.Len(), log.TotalBytes(), res.Time(), mode)
	fmt.Fprintf(out, "trace written to %s\n", tracePath)
	bounds, counts := log.SizeHistogram(64)
	fmt.Fprintln(out, "message-size histogram:")
	for i, b := range bounds {
		if counts[i] > 0 {
			fmt.Fprintf(out, "  <= %8d B: %d\n", b, counts[i])
		}
	}
	return nil
}

// replay loads the trace and re-injects it under the given routing mode.
func replay(out io.Writer, sys *dragonfly.System, tracePath string, mode dragonfly.Mode, timeScale float64) error {
	records, err := msglog.LoadJSONL(tracePath)
	if err != nil {
		return err
	}
	fab := sys.Fabric()
	replayLog := msglog.NewLog()
	replayLog.Attach(fab)
	scheduled, err := msglog.Replay(fab, records, msglog.ReplayOptions{Mode: mode, TimeScale: timeScale})
	if err != nil {
		return err
	}
	start := sys.Now()
	if err := sys.Engine().Run(); err != nil {
		return err
	}
	elapsed := sys.Now() - start

	total := sys.MachineCounters()
	lats := replayLog.Latencies()
	fmt.Fprintf(out, "replayed %d of %d messages under %s (time scale %.2f): %d cycles\n",
		replayLog.Len(), scheduled, mode, timeScale, elapsed)
	fmt.Fprintf(out, "delivered bytes: %d, stall ratio s=%.3f, avg packet latency L=%.1f cycles, non-minimal packets %.1f%%\n",
		replayLog.TotalBytes(), total.StallRatio(), total.AvgPacketLatency(), total.NonMinimalFraction()*100)
	if len(lats) > 0 {
		fmt.Fprintf(out, "per-message latency: median %.1f, p95 %.1f cycles\n",
			stats.Median(lats), stats.Percentile(lats, 95))
	}
	return nil
}
