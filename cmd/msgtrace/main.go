// Command msgtrace records and replays fabric-wide communication traces.
//
// In record mode it runs a workload on the simulated Dragonfly, captures every
// message transfer through the fabric's delivery observer and writes the trace
// as JSON Lines. In replay mode it loads such a trace and re-injects it onto a
// fresh system — possibly under a different routing mode or with a different
// time scale — and reports the delivered traffic and the NIC-level latency and
// stall statistics. Trace capture plus replay is the usual way to re-examine a
// communication pattern under routing changes without re-running the
// application.
//
// Usage:
//
//	msgtrace -mode record -workload alltoall -size 16384 -nodes 16 -trace trace.jsonl
//	msgtrace -mode replay -trace trace.jsonl -routing ADAPTIVE_3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dragonfly/internal/alloc"
	"dragonfly/internal/counters"
	"dragonfly/internal/mpi"
	"dragonfly/internal/msglog"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
	"dragonfly/internal/topo"
	"dragonfly/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "msgtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("msgtrace", flag.ContinueOnError)
	var (
		mode         = fs.String("mode", "record", "record or replay")
		tracePath    = fs.String("trace", "trace.jsonl", "trace file (written in record mode, read in replay mode)")
		workloadName = fs.String("workload", "alltoall", "workload to record")
		size         = fs.Int64("size", 16<<10, "workload size parameter")
		nodes        = fs.Int("nodes", 16, "job size (ranks) in record mode")
		groups       = fs.Int("groups", 4, "number of Dragonfly groups")
		routingMode  = fs.String("routing", "ADAPTIVE_0", "routing mode (record: for the workload; replay: for the replayed traffic)")
		timeScale    = fs.Float64("time-scale", 1.0, "replay pacing: >1 stretches the original gaps, <1 compresses them")
		seed         = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode2, err := routing.ParseMode(*routingMode)
	if err != nil {
		return err
	}

	t, err := topo.New(smallGeometry(*groups))
	if err != nil {
		return err
	}
	pol, err := routing.NewPolicy(t, routing.DefaultParams())
	if err != nil {
		return err
	}
	engine := sim.NewEngine(*seed)
	fab, err := network.New(engine, t, pol, network.DefaultConfig())
	if err != nil {
		return err
	}

	switch *mode {
	case "record":
		return record(out, fab, *workloadName, *size, *nodes, mode2, *tracePath)
	case "replay":
		return replay(out, fab, *tracePath, mode2, *timeScale)
	default:
		return fmt.Errorf("unknown mode %q (want record or replay)", *mode)
	}
}

// smallGeometry returns the reduced geometry used by the CLI tools.
func smallGeometry(groups int) topo.Config {
	cfg := topo.SmallConfig(groups)
	cfg.BladesPerChassis = 8
	cfg.GlobalLinksPerRouter = 4
	return cfg
}

// record runs the workload with a log attached and saves the trace.
func record(out io.Writer, fab *network.Fabric, workloadName string, size int64,
	nodes int, mode routing.Mode, tracePath string) error {

	t := fab.Topology()
	job, err := alloc.Allocate(t, alloc.GroupStriped, nodes, fab.Engine().Rand(), nil)
	if err != nil {
		return err
	}
	w, err := workloads.New(workloadName, job.Size(), size)
	if err != nil {
		return err
	}
	comm, err := mpi.NewComm(fab, job, mpi.Config{
		Routing: func(int) mpi.RoutingProvider { return mpi.StaticRouting{Mode: mode} },
	})
	if err != nil {
		return err
	}
	log := msglog.NewLog()
	log.Attach(fab)
	start := fab.Engine().Now()
	if err := comm.Run(w.Run); err != nil {
		return err
	}
	for r := 0; r < comm.Size(); r++ {
		if err := comm.Rank(r).Err(); err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	elapsed := fab.Engine().Now() - start
	if err := log.SaveJSONL(tracePath); err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %s: %d messages, %d bytes, %d cycles under %s\n",
		w.Name(), log.Len(), log.TotalBytes(), elapsed, mode)
	fmt.Fprintf(out, "trace written to %s\n", tracePath)
	bounds, counts := log.SizeHistogram(64)
	fmt.Fprintln(out, "message-size histogram:")
	for i, b := range bounds {
		if counts[i] > 0 {
			fmt.Fprintf(out, "  <= %8d B: %d\n", b, counts[i])
		}
	}
	return nil
}

// replay loads the trace and re-injects it under the given routing mode.
func replay(out io.Writer, fab *network.Fabric, tracePath string, mode routing.Mode, timeScale float64) error {
	records, err := msglog.LoadJSONL(tracePath)
	if err != nil {
		return err
	}
	replayLog := msglog.NewLog()
	replayLog.Attach(fab)
	scheduled, err := msglog.Replay(fab, records, msglog.ReplayOptions{Mode: mode, TimeScale: timeScale})
	if err != nil {
		return err
	}
	start := fab.Engine().Now()
	if err := fab.Engine().Run(); err != nil {
		return err
	}
	elapsed := fab.Engine().Now() - start

	var total counters.NIC
	for n := 0; n < fab.Topology().NumNodes(); n++ {
		total.Add(fab.NodeCounters(topo.NodeID(n)))
	}
	lats := replayLog.Latencies()
	fmt.Fprintf(out, "replayed %d of %d messages under %s (time scale %.2f): %d cycles\n",
		replayLog.Len(), scheduled, mode, timeScale, elapsed)
	fmt.Fprintf(out, "delivered bytes: %d, stall ratio s=%.3f, avg packet latency L=%.1f cycles, non-minimal packets %.1f%%\n",
		replayLog.TotalBytes(), total.StallRatio(), total.AvgPacketLatency(), total.NonMinimalFraction()*100)
	if len(lats) > 0 {
		fmt.Fprintf(out, "per-message latency: median %.1f, p95 %.1f cycles\n",
			stats.Median(lats), stats.Percentile(lats, 95))
	}
	return nil
}
