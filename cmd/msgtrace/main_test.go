package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRecordThenReplay(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	var out bytes.Buffer
	err := run([]string{
		"-mode", "record", "-workload", "alltoall", "-size", "2048",
		"-nodes", "8", "-groups", "3", "-trace", trace,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "recorded alltoall") || !strings.Contains(out.String(), "trace written") {
		t.Fatalf("record output unexpected:\n%s", out.String())
	}

	out.Reset()
	err = run([]string{
		"-mode", "replay", "-trace", trace, "-groups", "3",
		"-routing", "ADAPTIVE_3", "-time-scale", "0.5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replayed 56 of 56 messages") {
		t.Fatalf("replay output unexpected (8-rank pairwise alltoall has 56 messages):\n%s", out.String())
	}
}

func TestReplayMissingTraceFails(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mode", "replay", "-trace", filepath.Join(t.TempDir(), "missing.jsonl")}, &out); err == nil {
		t.Fatal("expected error for missing trace file")
	}
}

func TestUnknownModeFails(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mode", "bogus"}, &out); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}

func TestUnknownRoutingFails(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-routing", "bogus"}, &out); err == nil {
		t.Fatal("expected error for unknown routing mode")
	}
}
