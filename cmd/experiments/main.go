// Command experiments regenerates the tables and figures of the paper's
// evaluation. Each experiment id corresponds to one table or figure; see
// EXPERIMENTS.md for the mapping and recorded qualitative shapes.
//
// Every experiment declares its simulated runs through the trial harness
// (internal/harness), which fans independent trials out across CPU cores;
// -parallel controls the worker count and the output is byte-identical at
// every setting for a fixed -seed.
//
// Usage:
//
//	experiments -exp fig8                 # one experiment, laptop scale
//	experiments -exp all -iterations 50   # everything, more samples
//	experiments -exp fig8 -nodes 256 -full-aries -size-scale 4
//	experiments -exp fig10 -csv out/      # also write CSV files
//	experiments -exp all -parallel 1      # force serial execution
//	experiments -exp all -timeout 10m -progress
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"dragonfly"
	"dragonfly/internal/experiments"
	"dragonfly/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run parses flags and executes the requested experiments.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "", "experiment id ("+strings.Join(experiments.Names(), ", ")+" or 'all')")
		list       = fs.Bool("list", false, "list available experiments and exit")
		seed       = fs.Int64("seed", 1, "random seed")
		iterations = fs.Int("iterations", 0, "samples per configuration (0 = default)")
		nodes      = fs.Int("nodes", 0, "measured job size for fig8/fig9/fig10 (0 = default)")
		noiseNodes = fs.Int("noise-nodes", 0, "background job size (0 = default)")
		noiseGap   = fs.Int64("noise-interval", 0, "background inter-message gap in cycles (0 = default)")
		sizeScale  = fs.Float64("size-scale", 1.0, "multiplier applied to every message size")
		fullAries  = fs.Bool("full-aries", false, "use full-size Aries groups (96 routers per group)")
		quick      = fs.Bool("quick", false, "shrink sizes and iteration counts (smoke test)")
		csvDir     = fs.String("csv", "", "directory to also write one CSV file per table")
		parallel   = fs.Int("parallel", 0, "trial worker goroutines (0 = all cores, 1 = serial; same output either way)")
		shards     = fs.String("shards", "", "intra-run engine shards per trial ('auto', or a count; empty = serial; same output either way)")
		variant    = fs.String("routing-variant", "", "UGAL variant per trial ('exact' = the paper's serial model, 'shardable' = the relaxed parallel model; optional ':staleness=K' suffix; changes results, see EXPERIMENTS.md)")
		staleness  = fs.String("staleness", "", "ShardableUGAL replica-sync decimation K per trial (sync period = K x lookahead; empty = 1)")
		decTrace   = fs.String("decision-trace", "", "record adaptive routing decisions per trial ('on', a top-k count, or 'k=N'; empty = off)")
		timeout    = fs.Duration("timeout", 0, "abort the run after this wall-clock duration (0 = no limit)")
		progress   = fs.Bool("progress", false, "print per-trial progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range experiments.Names() {
			fmt.Fprintln(out, name)
		}
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("missing -exp (use -list to see available experiments)")
	}

	opts := experiments.DefaultOptions()
	opts.Seed = *seed
	if *iterations > 0 {
		opts.Iterations = *iterations
	}
	if *nodes > 0 {
		opts.Nodes = *nodes
	}
	if *noiseNodes > 0 {
		opts.NoiseNodes = *noiseNodes
	}
	if *noiseGap > 0 {
		opts.NoiseIntervalCycles = *noiseGap
	}
	opts.SizeScale = *sizeScale
	opts.FullAries = *fullAries
	opts.Quick = *quick
	opts.Parallel = *parallel
	if *shards != "" {
		n, err := dragonfly.ParseShards(*shards)
		if err != nil {
			return err
		}
		if n == 0 {
			n = runtime.GOMAXPROCS(0)
		}
		opts.Shards = n
	}
	if *variant != "" {
		v, k, err := dragonfly.ParseRoutingVariantSpec(*variant)
		if err != nil {
			return err
		}
		opts.Variant = v
		if k > 1 {
			opts.Staleness = k
		}
	}
	if *staleness != "" {
		k, err := dragonfly.ParseStaleness(*staleness)
		if err != nil {
			return err
		}
		if k > 1 && opts.Variant != dragonfly.ShardableUGAL {
			return fmt.Errorf("-staleness %d requires -routing-variant shardable", k)
		}
		opts.Staleness = k
	}
	if *decTrace != "" {
		k, err := dragonfly.ParseDecisionTrace(*decTrace)
		if err != nil {
			return err
		}
		opts.DecisionTrace = k
	}
	if *progress {
		opts.Progress = func(p harness.Progress) {
			status := "ok"
			if p.Err != nil {
				status = "FAILED: " + p.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (%s) %s\n",
				p.Completed, p.Total, p.ID, p.Elapsed.Round(time.Millisecond), status)
		}
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts = opts.WithContext(ctx)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Names()
	}
	for _, id := range ids {
		tables, err := experiments.Run(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for i, t := range tables {
			if err := t.Render(out); err != nil {
				return err
			}
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					return err
				}
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", id, i))
				if err := t.SaveCSV(path); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
