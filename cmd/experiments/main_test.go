package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig3", "fig8", "tab1", "hysteresis"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestMissingExperimentFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("expected error when -exp is missing")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "not-an-experiment", "-quick"}, &out); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunQuickExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{"-exp", "tab1", "-quick", "-iterations", "2", "-csv", dir}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Fatalf("output missing the Table 1 header:\n%s", out.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV files written")
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "incoming flits") {
		t.Fatalf("CSV content unexpected: %s", data)
	}
}

func TestRunQuickExperimentScalingFlags(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-exp", "fig4", "-quick", "-iterations", "2", "-seed", "5",
		"-nodes", "12", "-noise-nodes", "4", "-noise-interval", "30000", "-size-scale", "0.5"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 4") {
		t.Fatalf("output missing the Figure 4 header:\n%s", out.String())
	}
}

func TestRunParallelFlagsMatchSerial(t *testing.T) {
	args := func(parallel string) []string {
		return []string{"-exp", "fig3", "-quick", "-iterations", "2", "-parallel", parallel, "-timeout", "5m"}
	}
	var serial, parallel bytes.Buffer
	if err := run(args("1"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(args("4"), &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("-parallel changed the output:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
	if !strings.Contains(serial.String(), "Figure 3") {
		t.Fatalf("output missing the Figure 3 header:\n%s", serial.String())
	}
}
