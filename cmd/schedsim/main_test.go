package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSchedsimSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-jobs", "6", "-groups", "3", "-placement", "hybrid", "-backfill"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"machine:", "per-job schedule", "machine utilization", "6 submitted, 6 started, 6 finished"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSchedsimWithoutPerJobTable(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-jobs", "4", "-groups", "2", "-per-job=false"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "per-job schedule") {
		t.Fatal("per-job table printed despite -per-job=false")
	}
}

func TestSchedsimRealApps(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-jobs", "6", "-groups", "3", "-apps", "1", "-app-workloads", "alltoall,allreduce"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"apps=100%", "alltoall", "allreduce", "ran real applications"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "(0 ran real applications)") {
		t.Fatalf("no job ran a real application:\n%s", s)
	}
	if strings.Contains(s, "warning:") {
		t.Fatalf("real-app run produced fallback warnings:\n%s", s)
	}
}

// TestSchedsimRealAppsDeterministic: the concurrent multi-job scheduler path
// produces byte-identical output for a fixed seed.
func TestSchedsimRealAppsDeterministic(t *testing.T) {
	render := func() string {
		var out bytes.Buffer
		if err := run([]string{"-jobs", "5", "-groups", "3", "-apps", "0.7"}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("two identical schedsim runs diverged:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestSchedsimRejectsUnknownPlacement(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-placement", "nope"}, &out); err == nil {
		t.Fatal("expected error for unknown placement policy")
	}
}

func TestSchedsimRejectsImpossibleMix(t *testing.T) {
	var out bytes.Buffer
	// Min job size larger than the machine.
	if err := run([]string{"-groups", "2", "-min-nodes", "9999", "-max-nodes", "9999"}, &out); err == nil {
		t.Fatal("expected error for jobs larger than the machine")
	}
}

func TestSchedsimOpenStream(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-clients", "3", "-jobs", "400", "-groups", "3", "-placement", "contiguous"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"open-stream", "400 admitted, 400 started, 400 finished",
		"per-SLO-class service", "latency", "batch", "besteffort",
		"fairness: Jain index", "machine utilization",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("open-stream output missing %q:\n%s", want, s)
		}
	}
}

func TestSchedsimOpenStreamDeterministic(t *testing.T) {
	render := func() string {
		var out bytes.Buffer
		if err := run([]string{"-clients", "4", "-jobs", "300", "-placement", "random", "-seed", "9"}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("open-stream runs with identical flags diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestSchedsimOpenStreamArrivalSpec(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-arrivals", "latency:poisson:120000:nodes=2-8;batch:gamma:500000:shape=2:nodes=4-16",
		"-jobs", "200", "-groups", "3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "2 streams") || strings.Contains(s, "besteffort") {
		t.Fatalf("arrival spec not honoured:\n%s", s)
	}
}

func TestSchedsimOpenStreamHorizon(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-clients", "2", "-horizon", "3000000", "-groups", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "open-stream") {
		t.Fatalf("horizon flag did not enable open mode:\n%s", out.String())
	}
}

func TestSchedsimOpenStreamSLOFilter(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-clients", "4", "-jobs", "200", "-slo-classes", "latency,batch"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "besteffort") {
		t.Fatalf("-slo-classes filter leaked besteffort clients:\n%s", out.String())
	}
}

func TestSchedsimOpenStreamRejectsBadSpec(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-arrivals", "gold:zipf:100"}, &out); err == nil {
		t.Fatal("bad arrival spec was accepted")
	}
	if err := run([]string{"-clients", "2", "-slo-classes", "platinum"}, &out); err == nil {
		t.Fatal("unknown SLO class was accepted")
	}
}

// TestSchedsimEngineFlags: the -shards / -routing-variant / -staleness flags
// accepted by dragonsim work identically here, and sharding the engine does
// not change the schedule (the ExactUGAL byte-identity contract).
func TestSchedsimEngineFlags(t *testing.T) {
	render := func(extra ...string) string {
		var out bytes.Buffer
		args := append([]string{"-jobs", "5", "-groups", "3", "-apps", "0.7"}, extra...)
		if err := run(args, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	serial := render()
	if sharded := render("-shards", "2"); sharded != serial {
		t.Fatalf("-shards 2 changed the schedule:\n--- serial ---\n%s\n--- sharded ---\n%s", serial, sharded)
	}
	if s := render("-routing-variant", "shardable:staleness=2", "-shards", "2"); !strings.Contains(s, "machine utilization") {
		t.Fatalf("shardable variant run incomplete:\n%s", s)
	}
	if s := render("-routing-variant", "shardable", "-staleness", "4"); !strings.Contains(s, "machine utilization") {
		t.Fatalf("stale-replica run incomplete:\n%s", s)
	}
}

func TestSchedsimRejectsBadEngineFlags(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-shards", "zero"},
		{"-routing-variant", "quantum"},
		{"-routing-variant", "shardable:staleness=x"},
		{"-staleness", "0"},
	} {
		if err := run(append([]string{"-jobs", "2", "-groups", "2"}, args...), &out); err == nil {
			t.Fatalf("bad flag value %v was accepted", args)
		}
	}
}
