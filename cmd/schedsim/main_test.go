package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSchedsimSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-jobs", "6", "-groups", "3", "-placement", "hybrid", "-backfill"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"machine:", "per-job schedule", "machine utilization", "6 submitted, 6 started, 6 finished"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSchedsimWithoutPerJobTable(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-jobs", "4", "-groups", "2", "-per-job=false"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "per-job schedule") {
		t.Fatal("per-job table printed despite -per-job=false")
	}
}

func TestSchedsimRealApps(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-jobs", "6", "-groups", "3", "-apps", "1", "-app-workloads", "alltoall,allreduce"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"apps=100%", "alltoall", "allreduce", "ran real applications"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "(0 ran real applications)") {
		t.Fatalf("no job ran a real application:\n%s", s)
	}
	if strings.Contains(s, "warning:") {
		t.Fatalf("real-app run produced fallback warnings:\n%s", s)
	}
}

// TestSchedsimRealAppsDeterministic: the concurrent multi-job scheduler path
// produces byte-identical output for a fixed seed.
func TestSchedsimRealAppsDeterministic(t *testing.T) {
	render := func() string {
		var out bytes.Buffer
		if err := run([]string{"-jobs", "5", "-groups", "3", "-apps", "0.7"}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("two identical schedsim runs diverged:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestSchedsimRejectsUnknownPlacement(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-placement", "nope"}, &out); err == nil {
		t.Fatal("expected error for unknown placement policy")
	}
}

func TestSchedsimRejectsImpossibleMix(t *testing.T) {
	var out bytes.Buffer
	// Min job size larger than the machine.
	if err := run([]string{"-groups", "2", "-min-nodes", "9999", "-max-nodes", "9999"}, &out); err == nil {
		t.Fatal("expected error for jobs larger than the machine")
	}
}
