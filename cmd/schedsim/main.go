// Command schedsim runs a synthetic batch workload through the scheduler
// substrate on a simulated Dragonfly machine and reports per-job placement,
// waiting times and machine utilization for a chosen allocation policy. It is
// used to explore the allocation-based interference mitigation the paper's
// related work discusses (contiguous vs. random vs. hybrid placement) and to
// generate the multi-job backdrop of the scheduler-interference experiment.
//
// With -apps > 0 a share of the mix runs as *real* workload-driven
// applications (alltoall, halo3d, allreduce ranks co-scheduled on the shared
// fabric) instead of synthetic generators, so the interference the measured
// mix experiences comes from actual application traffic.
//
// Usage:
//
//	schedsim -jobs 24 -placement hybrid -backfill
//	schedsim -placement contiguous -groups 6 -max-nodes 32
//	schedsim -jobs 16 -apps 0.5 -app-workloads alltoall,halo3d
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dragonfly"
	"dragonfly/internal/mpi"
	"dragonfly/internal/sched"
	"dragonfly/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "schedsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("schedsim", flag.ContinueOnError)
	var (
		jobs        = fs.Int("jobs", 16, "number of jobs in the synthetic mix")
		placement   = fs.String("placement", "contiguous", "placement policy: contiguous, random, group-striped, hybrid")
		backfill    = fs.Bool("backfill", false, "enable conservative backfilling")
		groups      = fs.Int("groups", 4, "number of Dragonfly groups")
		fullAries   = fs.Bool("full-aries", false, "use full-size Aries groups")
		minNodes    = fs.Int("min-nodes", 2, "smallest job size")
		maxNodes    = fs.Int("max-nodes", 16, "largest job size")
		commShare   = fs.Float64("comm-share", 0.35, "fraction of communication-intensive jobs")
		interarrive = fs.Int64("interarrival", 200_000, "mean job inter-arrival time (cycles)")
		seed        = fs.Int64("seed", 1, "random seed")
		showJobs    = fs.Bool("per-job", true, "print the per-job table")
		appShare    = fs.Float64("apps", 0, "fraction of jobs that run real workload-driven applications")
		appNames    = fs.String("app-workloads", "alltoall,halo3d,allreduce", "comma-separated workloads app jobs cycle through")
		appIters    = fs.Int("app-iterations", 1, "workload repetitions per app job")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	policy, err := sched.ParseAllocationPolicy(*placement)
	if err != nil {
		return err
	}
	geometry := dragonfly.MediumGeometry(*groups)
	if *fullAries {
		geometry = dragonfly.AriesGeometry(*groups)
	}
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(geometry),
		dragonfly.WithSeed(*seed),
	)
	if err != nil {
		return err
	}
	t := sys.Topology()
	fab := sys.Fabric()

	mix := sched.DefaultMixConfig()
	mix.Jobs = *jobs
	mix.MinNodes = *minNodes
	mix.MaxNodes = *maxNodes
	mix.CommIntensiveFraction = *commShare
	mix.MeanInterarrivalCycles = *interarrive
	mix.Seed = *seed
	mix.AppFraction = *appShare
	for _, name := range strings.Split(*appNames, ",") {
		if name = strings.TrimSpace(name); name != "" {
			mix.AppWorkloads = append(mix.AppWorkloads, name)
		}
	}
	mix.AppIterations = *appIters
	specs, err := sched.GenerateMix(mix, t.NumNodes())
	if err != nil {
		return err
	}

	s := sched.New(fab, sched.Config{Placement: policy, Backfill: *backfill, Seed: *seed})
	if *appShare > 0 {
		s.AttachExecutor(mpi.NewScheduler(sys.Engine()))
	}
	for _, spec := range specs {
		if _, err := s.Submit(spec); err != nil {
			return err
		}
	}
	s.Start()
	if err := s.Drive(nil); err != nil {
		return err
	}

	fmt.Fprintf(out, "machine: %d nodes / %d routers / %d groups; placement=%s backfill=%v apps=%.0f%%\n",
		t.NumNodes(), t.NumRouters(), t.Config().Groups, policy, *backfill, *appShare*100)

	if *showJobs {
		table := trace.NewTable("per-job schedule",
			"job", "nodes", "app", "comm-intensive", "wait (cycles)", "run (cycles)",
			"routers", "groups", "messages/packets")
		for _, rec := range s.SortedByStart() {
			app := "-"
			traffic := rec.MessagesSent
			if rec.RanApp {
				app = rec.Spec.App.Workload
				traffic = rec.AppPackets
			}
			table.AddRow(rec.Spec.Name, rec.Spec.Nodes, app, rec.Spec.CommIntensive,
				rec.WaitCycles(), rec.FinishedAt-rec.StartedAt,
				rec.RoutersSpanned, rec.GroupsSpanned, traffic)
		}
		if err := table.Render(out); err != nil {
			return err
		}
	}

	st := s.Stats()
	fmt.Fprintf(out, "\njobs: %d submitted, %d started, %d finished (%d ran real applications)\n",
		st.Submitted, st.Started, st.Finished, st.AppJobs)
	fmt.Fprintf(out, "waiting: mean %.0f cycles, max %d cycles\n", st.MeanWaitCycles, st.MaxWaitCycles)
	fmt.Fprintf(out, "fragmentation: %.2f groups spanned per job on average\n", st.MeanGroupsSpanned)
	fmt.Fprintf(out, "machine utilization: %.1f%%, makespan %d cycles\n", st.Utilization*100, st.MakespanCycles)
	fmt.Fprintf(out, "fabric: %d packets injected by batch jobs\n", fab.PacketsInjected())
	for _, rec := range s.Jobs() {
		if rec.AppErr != nil {
			fmt.Fprintf(out, "warning: %s fell back to synthetic traffic: %v\n", rec.Spec.Name, rec.AppErr)
		}
		if rec.TrafficErr != nil {
			fmt.Fprintf(out, "warning: %s generated no traffic: %v\n", rec.Spec.Name, rec.TrafficErr)
		}
	}
	return nil
}
