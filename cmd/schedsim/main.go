// Command schedsim runs a synthetic batch workload through the scheduler
// substrate on a simulated Dragonfly machine and reports per-job placement,
// waiting times and machine utilization for a chosen allocation policy. It is
// used to explore the allocation-based interference mitigation the paper's
// related work discusses (contiguous vs. random vs. hybrid placement) and to
// generate the multi-job backdrop of the scheduler-interference experiment.
//
// With -apps > 0 a share of the mix runs as *real* workload-driven
// applications (alltoall, halo3d, allreduce ranks co-scheduled on the shared
// fabric) instead of synthetic generators, so the interference the measured
// mix experiences comes from actual application traffic.
//
// With -arrivals, -clients or -horizon the tool switches from draining a
// fixed mix to an *open* arrival stream: tenant clients with SLO classes
// (latency, batch, best-effort) submit jobs from Poisson/Gamma/Weibull
// processes until the event budget (-jobs) or the admission horizon
// (-horizon) is reached, and the report becomes per-class slowdown
// distributions, SLO violation rates and the Jain fairness index.
//
// Usage:
//
//	schedsim -jobs 24 -placement hybrid -backfill
//	schedsim -placement contiguous -groups 6 -max-nodes 32
//	schedsim -jobs 16 -apps 0.5 -app-workloads alltoall,halo3d
//	schedsim -clients 6 -jobs 5000 -placement random
//	schedsim -arrivals "latency:poisson:150000:nodes=2-8;batch:gamma:600000:shape=2" -horizon 50000000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dragonfly"
	"dragonfly/internal/arrival"
	"dragonfly/internal/mpi"
	"dragonfly/internal/sched"
	"dragonfly/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "schedsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("schedsim", flag.ContinueOnError)
	var (
		jobs        = fs.Int("jobs", 16, "number of jobs in the synthetic mix")
		placement   = fs.String("placement", "contiguous", "placement policy: contiguous, random, group-striped, hybrid")
		backfill    = fs.Bool("backfill", false, "enable conservative backfilling")
		groups      = fs.Int("groups", 4, "number of Dragonfly groups")
		fullAries   = fs.Bool("full-aries", false, "use full-size Aries groups")
		minNodes    = fs.Int("min-nodes", 2, "smallest job size")
		maxNodes    = fs.Int("max-nodes", 16, "largest job size")
		commShare   = fs.Float64("comm-share", 0.35, "fraction of communication-intensive jobs")
		interarrive = fs.Int64("interarrival", 200_000, "mean job inter-arrival time (cycles)")
		seed        = fs.Int64("seed", 1, "random seed")
		showJobs    = fs.Bool("per-job", true, "print the per-job table")
		appShare    = fs.Float64("apps", 0, "fraction of jobs that run real workload-driven applications")
		appNames    = fs.String("app-workloads", "alltoall,halo3d,allreduce", "comma-separated workloads app jobs cycle through")
		appIters    = fs.Int("app-iterations", 1, "workload repetitions per app job")
		arrivals    = fs.String("arrivals", "", "open-arrival spec (class:dist:mean[:key=val]*; ...); enables open-stream mode")
		clients     = fs.Int("clients", 0, "number of default open-arrival clients; enables open-stream mode")
		horizon     = fs.Int64("horizon", 0, "open-stream admission horizon in cycles (0: use -jobs as the event budget)")
		sloClasses  = fs.String("slo-classes", "latency,batch,besteffort", "SLO classes the default clients cycle through")
		shardsFlag  = fs.String("shards", "", "intra-run engine shards ('auto', or a count; empty = serial; same output either way)")
		variantFlag = fs.String("routing-variant", "", "UGAL variant ('exact' = the paper's serial model, 'shardable' = the relaxed parallel model; optional ':staleness=K' suffix; changes results)")
		staleFlag   = fs.String("staleness", "", "ShardableUGAL replica-sync decimation K (sync period = K x lookahead; empty = 1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	policy, err := sched.ParseAllocationPolicy(*placement)
	if err != nil {
		return err
	}
	geometry := dragonfly.MediumGeometry(*groups)
	if *fullAries {
		geometry = dragonfly.AriesGeometry(*groups)
	}
	sysOpts := []dragonfly.Option{
		dragonfly.WithGeometry(geometry),
		dragonfly.WithSeed(*seed),
	}
	if *shardsFlag != "" {
		n, err := dragonfly.ParseShards(*shardsFlag)
		if err != nil {
			return err
		}
		sysOpts = append(sysOpts, dragonfly.WithShards(n))
	}
	if *variantFlag != "" {
		v, k, err := dragonfly.ParseRoutingVariantSpec(*variantFlag)
		if err != nil {
			return err
		}
		sysOpts = append(sysOpts, dragonfly.WithRoutingVariant(v))
		if k > 1 {
			sysOpts = append(sysOpts, dragonfly.WithReplicaStaleness(k))
		}
	}
	if *staleFlag != "" {
		k, err := dragonfly.ParseStaleness(*staleFlag)
		if err != nil {
			return err
		}
		sysOpts = append(sysOpts, dragonfly.WithReplicaStaleness(k))
	}
	sys, err := dragonfly.New(sysOpts...)
	if err != nil {
		return err
	}
	t := sys.Topology()
	fab := sys.Fabric()

	if *arrivals != "" || *clients > 0 || *horizon > 0 {
		return runOpen(out, sys, policy, *arrivals, *clients, *sloClasses, *horizon, *jobs, *interarrive, *seed)
	}

	mix := sched.DefaultMixConfig()
	mix.Jobs = *jobs
	mix.MinNodes = *minNodes
	mix.MaxNodes = *maxNodes
	mix.CommIntensiveFraction = *commShare
	mix.MeanInterarrivalCycles = *interarrive
	mix.Seed = *seed
	mix.AppFraction = *appShare
	for _, name := range strings.Split(*appNames, ",") {
		if name = strings.TrimSpace(name); name != "" {
			mix.AppWorkloads = append(mix.AppWorkloads, name)
		}
	}
	mix.AppIterations = *appIters
	specs, err := sched.GenerateMix(mix, t.NumNodes())
	if err != nil {
		return err
	}

	s := sched.New(fab, sched.Config{Placement: policy, Backfill: *backfill, Seed: *seed})
	if *appShare > 0 {
		s.AttachExecutor(mpi.NewScheduler(sys.Engine()))
	}
	for _, spec := range specs {
		if _, err := s.Submit(spec); err != nil {
			return err
		}
	}
	s.Start()
	if err := s.Drive(nil); err != nil {
		return err
	}

	fmt.Fprintf(out, "machine: %d nodes / %d routers / %d groups; placement=%s backfill=%v apps=%.0f%%\n",
		t.NumNodes(), t.NumRouters(), t.Config().Groups, policy, *backfill, *appShare*100)

	if *showJobs {
		table := trace.NewTable("per-job schedule",
			"job", "nodes", "app", "comm-intensive", "wait (cycles)", "run (cycles)",
			"routers", "groups", "messages/packets")
		for _, rec := range s.SortedByStart() {
			app := "-"
			traffic := rec.MessagesSent
			if rec.RanApp {
				app = rec.Spec.App.Workload
				traffic = rec.AppPackets
			}
			table.AddRow(rec.Spec.Name, rec.Spec.Nodes, app, rec.Spec.CommIntensive,
				rec.WaitCycles(), rec.FinishedAt-rec.StartedAt,
				rec.RoutersSpanned, rec.GroupsSpanned, traffic)
		}
		if err := table.Render(out); err != nil {
			return err
		}
	}

	st := s.Stats()
	fmt.Fprintf(out, "\njobs: %d submitted, %d started, %d finished (%d ran real applications)\n",
		st.Submitted, st.Started, st.Finished, st.AppJobs)
	fmt.Fprintf(out, "waiting: mean %.0f cycles, max %d cycles\n", st.MeanWaitCycles, st.MaxWaitCycles)
	fmt.Fprintf(out, "fragmentation: %.2f groups spanned per job on average\n", st.MeanGroupsSpanned)
	fmt.Fprintf(out, "machine utilization: %.1f%%, makespan %d cycles\n", st.Utilization*100, st.MakespanCycles)
	fmt.Fprintf(out, "fabric: %d packets injected by batch jobs\n", fab.PacketsInjected())
	for _, rec := range s.Jobs() {
		if rec.AppErr != nil {
			fmt.Fprintf(out, "warning: %s fell back to synthetic traffic: %v\n", rec.Spec.Name, rec.AppErr)
		}
		if rec.TrafficErr != nil {
			fmt.Fprintf(out, "warning: %s generated no traffic: %v\n", rec.Spec.Name, rec.TrafficErr)
		}
	}
	return nil
}

// openSpec builds the arrival spec for open-stream mode: an explicit -arrivals
// grammar when given, otherwise -clients default clients cycling through the
// -slo-classes list.
func openSpec(arrivals string, clients int, sloClasses string, meanGap int64) (dragonfly.ArrivalSpec, error) {
	if arrivals != "" {
		return dragonfly.ParseArrival(arrivals)
	}
	if clients <= 0 {
		clients = 3
	}
	var allowed []dragonfly.SLOClass
	for _, name := range strings.Split(sloClasses, ",") {
		if name = strings.TrimSpace(name); name != "" {
			c, err := arrival.ParseClass(name)
			if err != nil {
				return dragonfly.ArrivalSpec{}, err
			}
			allowed = append(allowed, c)
		}
	}
	if len(allowed) == 0 {
		return dragonfly.ArrivalSpec{}, fmt.Errorf("schedsim: -slo-classes selected no classes")
	}
	presets := arrival.DefaultClients(arrival.NumClasses, meanGap)
	byClass := make(map[dragonfly.SLOClass]dragonfly.ArrivalClient, len(presets))
	for _, p := range presets {
		p.Name = "" // re-derived per client by Normalize
		byClass[p.Class] = p
	}
	spec := dragonfly.ArrivalSpec{}
	for i := 0; i < clients; i++ {
		spec.Clients = append(spec.Clients, byClass[allowed[i%len(allowed)]])
	}
	return spec.Normalize(), nil
}

// runOpen drives the open-arrival mode and prints the SLO/fairness report.
func runOpen(out io.Writer, sys *dragonfly.System, policy sched.AllocationPolicy,
	arrivals string, clients int, sloClasses string, horizon int64, events int,
	meanGap, seed int64) error {
	spec, err := openSpec(arrivals, clients, sloClasses, meanGap)
	if err != nil {
		return err
	}
	cfg := sched.OpenConfig{Placement: policy, Seed: seed}
	if horizon > 0 {
		cfg.HorizonCycles = horizon
	} else {
		cfg.MaxJobEvents = events
	}
	o, err := sched.NewOpenStream(sys.Fabric(), spec, cfg)
	if err != nil {
		return err
	}
	o.Start()
	if err := o.Drive(nil); err != nil {
		return err
	}
	st := o.Stats()

	t := sys.Topology()
	fmt.Fprintf(out, "machine: %d nodes / %d routers / %d groups; placement=%s open-stream\n",
		t.NumNodes(), t.NumRouters(), t.Config().Groups, policy)
	fmt.Fprintf(out, "clients: %d streams", len(spec.Clients))
	for _, c := range spec.Clients {
		fmt.Fprintf(out, "  %s(%s:%s)", c.Name, c.Class, c.Dist)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "job events: %d admitted, %d started, %d finished; max queue %d\n",
		st.Admitted, st.Started, st.Finished, st.MaxQueueLength)

	table := trace.NewTable("per-SLO-class service",
		"class", "jobs", "slowdown p50", "q3", "max", "target", "viol %", "mean wait (cycles)")
	for c := 0; c < arrival.NumClasses; c++ {
		cs := st.Classes[c]
		if cs.Finished == 0 {
			continue
		}
		target := fmt.Sprintf("%.0f", cs.TargetSlowdown)
		if cs.TargetSlowdown > 1e18 {
			target = "-"
		}
		table.AddRow(dragonfly.SLOClass(c).String(), cs.Finished,
			cs.Slowdown.Median, cs.Slowdown.Q3, cs.Slowdown.Max,
			target, cs.ViolationFrac*100, cs.WaitCycles.Mean)
	}
	if err := table.Render(out); err != nil {
		return err
	}

	fmt.Fprintf(out, "\nfairness: Jain index %.4f across %d tenants\n", st.JainFairness, len(spec.Clients))
	fmt.Fprintf(out, "machine utilization: %.1f%%, fragmentation median %.3f, makespan %d cycles\n",
		st.Utilization*100, st.Fragmentation.Median, st.MakespanCycles)
	return nil
}
