// Command dragonsim runs a single workload on a simulated Dragonfly system and
// prints the execution time, the NIC counters and (for the application-aware
// configuration) the selector statistics. It is the quickest way to poke at
// the simulator from the command line, and the smallest complete consumer of
// the public dragonfly facade.
//
// Usage:
//
//	dragonsim -workload alltoall -size 16384 -nodes 32 -routing appaware
//	dragonsim -workload halo3d -size 512 -nodes 64 -routing ADAPTIVE_3 -noise
//	dragonsim -list-workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"dragonfly"
	"dragonfly/internal/counterfactual"
	droute "dragonfly/internal/routing"
	"dragonfly/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dragonsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dragonsim", flag.ContinueOnError)
	var (
		workloadName = fs.String("workload", "pingpong", "workload name (-list-workloads to enumerate)")
		listW        = fs.Bool("list-workloads", false, "list available workloads and exit")
		size         = fs.Int64("size", 16<<10, "workload size parameter (bytes, elements or domain edge)")
		nodes        = fs.Int("nodes", 16, "number of ranks (one per node)")
		groups       = fs.Int("groups", 4, "number of Dragonfly groups")
		fullAries    = fs.Bool("full-aries", false, "use full-size Aries groups")
		geometryName = fs.String("geometry", "", "geometry ladder rung or preset (small, medium, large, daint, small:N, medium:N, aries:N); overrides -groups/-full-aries")
		routingMode  = fs.String("routing", "default", "routing: default, ADAPTIVE_0..3, MIN_HASH, NMIN_HASH, IN_ORDER, or appaware")
		allocPolicy  = fs.String("alloc", "group-striped", "allocation policy: contiguous, random, group-striped")
		iterations   = fs.Int("iterations", 3, "workload repetitions")
		seed         = fs.Int64("seed", 1, "random seed")
		shardsFlag   = fs.String("shards", "", "intra-run engine shards ('auto', or a count; empty = serial; same output either way)")
		variantFlag  = fs.String("routing-variant", "", "UGAL variant ('exact' = the paper's serial model, 'shardable' = the relaxed parallel model; optional ':staleness=K' suffix; changes results)")
		staleFlag    = fs.String("staleness", "", "ShardableUGAL replica-sync decimation K (sync period = K x lookahead; empty = 1)")
		traceFlag    = fs.String("decision-trace", "", "record adaptive routing decisions ('on', a top-k count, or 'k=N'; empty = off) and print a counterfactual scoring table")
		withNoise    = fs.Bool("noise", false, "add a background interfering job")
		noiseNodesN  = fs.Int("noise-nodes", 16, "background job size when -noise is set")
		report       = fs.Int("report", 0, "print a link-utilization report listing the N hottest links")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listW {
		for _, name := range dragonfly.WorkloadNames() {
			fmt.Println(name)
		}
		return nil
	}

	// Fail fast on bad names before building any system.
	routing, err := dragonfly.ParseRouting(*routingMode)
	if err != nil {
		return err
	}
	policy, err := dragonfly.ParsePolicy(*allocPolicy)
	if err != nil {
		return err
	}

	geometry := dragonfly.MediumGeometry(*groups)
	if *fullAries {
		geometry = dragonfly.AriesGeometry(*groups)
	}
	if *geometryName != "" {
		geometry, err = dragonfly.ParseGeometry(*geometryName)
		if err != nil {
			return err
		}
	}
	sysOpts := []dragonfly.Option{
		dragonfly.WithGeometry(geometry),
		dragonfly.WithSeed(*seed),
	}
	if *shardsFlag != "" {
		n, err := dragonfly.ParseShards(*shardsFlag)
		if err != nil {
			return err
		}
		sysOpts = append(sysOpts, dragonfly.WithShards(n))
	}
	if *variantFlag != "" {
		v, k, err := dragonfly.ParseRoutingVariantSpec(*variantFlag)
		if err != nil {
			return err
		}
		sysOpts = append(sysOpts, dragonfly.WithRoutingVariant(v))
		if k > 1 {
			sysOpts = append(sysOpts, dragonfly.WithReplicaStaleness(k))
		}
	}
	if *staleFlag != "" {
		k, err := dragonfly.ParseStaleness(*staleFlag)
		if err != nil {
			return err
		}
		sysOpts = append(sysOpts, dragonfly.WithReplicaStaleness(k))
	}
	traceK, err := dragonfly.ParseDecisionTrace(*traceFlag)
	if err != nil {
		return err
	}
	if traceK > 0 {
		sysOpts = append(sysOpts, dragonfly.WithDecisionTrace(traceK))
	}
	sys, err := dragonfly.New(sysOpts...)
	if err != nil {
		return err
	}

	job, err := sys.Allocate(policy, *nodes)
	if err != nil {
		return err
	}
	t := sys.Topology()
	fmt.Printf("system: %d nodes, %d routers, %d groups, %d engine shards; job: %s\n",
		t.NumNodes(), t.NumRouters(), t.Config().Groups, sys.Shards(), job)

	// Optional background noise. StartNoise silently caps the job to the free
	// nodes; the user asked for a specific interference scenario, so reject
	// requests the machine cannot honor instead.
	if *withNoise {
		if free := sys.FreeNodes(); *noiseNodesN > free {
			return fmt.Errorf("allocating noise job: requested %d nodes but only %d are free", *noiseNodesN, free)
		}
		g := sys.StartNoise(dragonfly.NoiseConfig{
			Pattern: dragonfly.NoiseUniform,
			Nodes:   *noiseNodesN,
		})
		if g == nil {
			return fmt.Errorf("no room for a %d-node background job", *noiseNodesN)
		}
		fmt.Printf("background job: %d nodes, %s pattern\n", g.NumNodes(), dragonfly.NoiseUniform)
	}

	w, err := dragonfly.NewWorkload(*workloadName, job.Size(), *size)
	if err != nil {
		return err
	}
	res, err := job.Run(w, dragonfly.RunOptions{Routing: routing, Iterations: *iterations})
	if err != nil {
		return err
	}

	results := trace.NewTable(fmt.Sprintf("%s size=%d routing=%s", w.Name(), *size, *routingMode),
		"iteration", "time (cycles)", "job packets", "job flits", "stall ratio", "avg latency", "non-minimal %")
	for i, delta := range res.Deltas {
		results.AddRow(i, res.Times[i], delta.RequestPackets, delta.RequestFlits,
			delta.StallRatio(), delta.AvgPacketLatency(), delta.NonMinimalFraction()*100)
	}
	if err := results.Render(os.Stdout); err != nil {
		return err
	}

	if res.HasSelectorStats {
		st := res.SelectorStats
		fmt.Printf("application-aware selector: %d messages, %.1f%% of bytes sent with Default routing, %d evaluations, %d mode switches\n",
			st.Messages, st.DefaultTrafficFraction()*100, st.Evaluations, st.Switches)
	}
	if traceK > 0 {
		if err := printCounterfactual(sys, traceK); err != nil {
			return err
		}
	}
	if *report > 0 {
		fmt.Print(sys.Fabric().Report(*report))
	}
	return nil
}

// printCounterfactual replays the recorded adaptive decisions under each bias
// mode and prints how much raw congestion cost the live policy avoided.
func printCounterfactual(sys *dragonfly.System, k int) error {
	tr := sys.DecisionTrace()
	modes := []droute.Mode{droute.Adaptive, droute.IncreasinglyMinimalBias,
		droute.AdaptiveLowBias, droute.AdaptiveHighBias}
	outcomes, err := counterfactual.Score(tr, droute.DefaultParams(), modes)
	if err != nil {
		return err
	}
	tab := trace.NewTable(
		fmt.Sprintf("counterfactual decision scoring: top-%d candidates, %d decisions kept, %d dropped",
			k, tr.Len(), tr.Dropped()),
		"scored mode", "decisions", "switched %", "cf minimal %", "avoided/decision", "avoided total")
	for _, o := range outcomes {
		tab.AddRow(o.Mode.Name(), o.Decisions, o.SwitchedFraction()*100,
			o.MinimalFraction()*100, o.MeanAvoided(), o.AvoidedCycles())
	}
	return tab.Render(os.Stdout)
}
