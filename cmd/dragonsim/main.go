// Command dragonsim runs a single workload on a simulated Dragonfly system and
// prints the execution time, the NIC counters and (for the application-aware
// configuration) the selector statistics. It is the quickest way to poke at
// the simulator from the command line.
//
// Usage:
//
//	dragonsim -workload alltoall -size 16384 -nodes 32 -routing appaware
//	dragonsim -workload halo3d -size 512 -nodes 64 -routing ADAPTIVE_3 -noise
//	dragonsim -list-workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/counters"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dragonsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dragonsim", flag.ContinueOnError)
	var (
		workloadName = fs.String("workload", "pingpong", "workload name (-list-workloads to enumerate)")
		listW        = fs.Bool("list-workloads", false, "list available workloads and exit")
		size         = fs.Int64("size", 16<<10, "workload size parameter (bytes, elements or domain edge)")
		nodes        = fs.Int("nodes", 16, "number of ranks (one per node)")
		groups       = fs.Int("groups", 4, "number of Dragonfly groups")
		fullAries    = fs.Bool("full-aries", false, "use full-size Aries groups")
		routingMode  = fs.String("routing", "default", "routing: default, ADAPTIVE_0..3, MIN_HASH, NMIN_HASH, IN_ORDER, or appaware")
		allocPolicy  = fs.String("alloc", "group-striped", "allocation policy: contiguous, random, group-striped")
		iterations   = fs.Int("iterations", 3, "workload repetitions")
		seed         = fs.Int64("seed", 1, "random seed")
		withNoise    = fs.Bool("noise", false, "add a background interfering job")
		noiseNodesN  = fs.Int("noise-nodes", 16, "background job size when -noise is set")
		report       = fs.Int("report", 0, "print a link-utilization report listing the N hottest links")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listW {
		for _, name := range workloads.Names() {
			fmt.Println(name)
		}
		return nil
	}

	// Topology and fabric.
	var tcfg topo.Config
	if *fullAries {
		tcfg = topo.AriesConfig(*groups)
	} else {
		tcfg = topo.SmallConfig(*groups)
		tcfg.BladesPerChassis = 8
		tcfg.GlobalLinksPerRouter = 4
	}
	t, err := topo.New(tcfg)
	if err != nil {
		return err
	}
	pol, err := routing.NewPolicy(t, routing.DefaultParams())
	if err != nil {
		return err
	}
	engine := sim.NewEngine(*seed)
	fab, err := network.New(engine, t, pol, network.DefaultConfig())
	if err != nil {
		return err
	}

	// Allocation.
	policy, err := alloc.ParsePolicy(*allocPolicy)
	if err != nil {
		return err
	}
	rng := engine.Rand()
	job, err := alloc.Allocate(t, policy, *nodes, rng, nil)
	if err != nil {
		return err
	}
	fmt.Printf("system: %d nodes, %d routers, %d groups; job: %s\n",
		t.NumNodes(), t.NumRouters(), t.Config().Groups, job)

	// Optional background noise.
	if *withNoise {
		ncfg := noise.DefaultGeneratorConfig()
		ncfg.Seed = *seed + 1
		na, err := alloc.Allocate(t, alloc.RandomScatter, *noiseNodesN, rng, alloc.ExcludeSet(job))
		if err != nil {
			return fmt.Errorf("allocating noise job: %w", err)
		}
		g, err := noise.FromAllocation(fab, na, ncfg)
		if err != nil {
			return err
		}
		g.Start(1 << 50)
		fmt.Printf("background job: %d nodes, %s pattern\n", na.Size(), ncfg.Pattern)
	}

	// Routing provider.
	var selectors []*core.Selector
	var provider func(int) mpi.RoutingProvider
	switch *routingMode {
	case "default":
		provider = func(int) mpi.RoutingProvider { return mpi.DefaultRouting() }
	case "appaware":
		provider = func(int) mpi.RoutingProvider {
			s := core.MustNew(core.DefaultConfig())
			selectors = append(selectors, s)
			return mpi.AppAwareRouting{Selector: s}
		}
	default:
		mode, err := routing.ParseMode(*routingMode)
		if err != nil {
			return err
		}
		provider = func(int) mpi.RoutingProvider { return mpi.StaticRouting{Mode: mode} }
	}

	// Workload.
	w, err := workloads.New(*workloadName, job.Size(), *size)
	if err != nil {
		return err
	}
	comm, err := mpi.NewComm(fab, job, mpi.Config{Routing: provider})
	if err != nil {
		return err
	}

	results := trace.NewTable(fmt.Sprintf("%s size=%d routing=%s", w.Name(), *size, *routingMode),
		"iteration", "time (cycles)", "job packets", "job flits", "stall ratio", "avg latency", "non-minimal %")
	for i := 0; i < *iterations; i++ {
		before := jobCounters(fab, job)
		start := engine.Now()
		if err := comm.Run(w.Run); err != nil {
			return err
		}
		for r := 0; r < comm.Size(); r++ {
			if err := comm.Rank(r).Err(); err != nil {
				return fmt.Errorf("rank %d: %w", r, err)
			}
		}
		delta := jobCounters(fab, job).Sub(before)
		results.AddRow(i, engine.Now()-start, delta.RequestPackets, delta.RequestFlits,
			delta.StallRatio(), delta.AvgPacketLatency(), delta.NonMinimalFraction()*100)
	}
	if err := results.Render(os.Stdout); err != nil {
		return err
	}

	if len(selectors) > 0 {
		var agg core.Stats
		for _, s := range selectors {
			st := s.Stats()
			agg.Messages += st.Messages
			agg.Bytes += st.Bytes
			agg.DefaultBytes += st.DefaultBytes
			agg.BiasBytes += st.BiasBytes
			agg.Evaluations += st.Evaluations
			agg.Switches += st.Switches
		}
		fmt.Printf("application-aware selector: %d messages, %.1f%% of bytes sent with Default routing, %d evaluations, %d mode switches\n",
			agg.Messages, agg.DefaultTrafficFraction()*100, agg.Evaluations, agg.Switches)
	}
	if *report > 0 {
		fmt.Print(fab.Report(*report))
	}
	return nil
}

// jobCounters sums the NIC counters over the job's nodes.
func jobCounters(fab *network.Fabric, job *alloc.Allocation) counters.NIC {
	var total counters.NIC
	for _, n := range job.Nodes() {
		total.Add(fab.NodeCounters(n))
	}
	return total
}
