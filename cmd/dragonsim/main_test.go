package main

import "testing"

func TestListWorkloads(t *testing.T) {
	if err := run([]string{"-list-workloads"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPingPongDefault(t *testing.T) {
	args := []string{"-workload", "pingpong", "-size", "1024", "-nodes", "4",
		"-groups", "2", "-iterations", "2"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunAlltoallAppAwareWithNoiseAndReport(t *testing.T) {
	args := []string{"-workload", "alltoall", "-size", "512", "-nodes", "8",
		"-groups", "3", "-routing", "appaware", "-iterations", "2",
		"-noise", "-noise-nodes", "6", "-report", "3"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunStaticRoutingMode(t *testing.T) {
	args := []string{"-workload", "broadcast", "-size", "4096", "-nodes", "6",
		"-groups", "2", "-routing", "ADAPTIVE_3", "-iterations", "1", "-alloc", "contiguous"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-workload", "not-a-workload"},
		{"-routing", "NOT_A_MODE"},
		{"-alloc", "not-a-policy"},
		{"-nodes", "100000", "-groups", "2"},
		{"-groups", "0"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("expected error for args %v", args)
		}
	}
}

func TestRunGeometryPreset(t *testing.T) {
	if err := run([]string{"-geometry", "small:2", "-workload", "pingpong", "-nodes", "2", "-iterations", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-geometry", "bogus"}); err == nil {
		t.Fatal("expected error for unknown geometry preset")
	}
}
