package dragonfly_test

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"dragonfly"
	"dragonfly/internal/testutil"
	"dragonfly/internal/workloads"
)

// shardedSystem builds a system on the given geometry with the requested
// intra-run shard count.
func shardedSystem(t *testing.T, g dragonfly.Geometry, seed int64, shards int) *dragonfly.System {
	t.Helper()
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(g),
		dragonfly.WithSeed(seed),
		dragonfly.WithShards(shards),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// runLadderJob runs one small alltoall job and renders its full Result, the
// ladder-wide determinism probe.
func runLadderJob(t *testing.T, sys *dragonfly.System) string {
	t.Helper()
	job, err := sys.Allocate(dragonfly.GroupStriped, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(&workloads.Alltoall{MessageBytes: 1 << 10, Iterations: 1},
		dragonfly.RunOptions{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	return renderResults([]dragonfly.Result{res})
}

// TestShardedLadderByteIdentical is the tentpole's determinism bar across
// the whole geometry ladder: for every rung, the rendered Result of the same
// job is byte-identical at every shard count — the serial engine and the
// group-sharded engine must be indistinguishable in output.
func TestShardedLadderByteIdentical(t *testing.T) {
	for _, rung := range dragonfly.GeometryLadder() {
		rung := rung
		t.Run(rung.Name, func(t *testing.T) {
			if (rung.Name == "large" || rung.Name == "daint") && testing.Short() {
				t.Skip("machine-scale rung skipped in -short mode")
			}
			want := runLadderJob(t, shardedSystem(t, rung.Geometry, 7, 1))
			for _, shards := range []int{2, 4, 8} {
				sys := shardedSystem(t, rung.Geometry, 7, shards)
				if got := runLadderJob(t, sys); got != want {
					t.Fatalf("shards=%d (effective %d) diverges from serial on %s:\n got: %s\nwant: %s",
						shards, sys.Shards(), rung.Name, got, want)
				}
			}
		})
	}
}

// TestShardedGoldenLargeSingleRun reruns the Large-rung golden with the
// sharded engine: every pre-existing golden SHA256 must hold unchanged at
// every shard count.
func TestShardedGoldenLargeSingleRun(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		sys := shardedSystem(t, dragonfly.Large, 1, shards)
		victim, err := sys.Allocate(dragonfly.GroupStriped, 16)
		if err != nil {
			t.Fatal(err)
		}
		res, err := victim.Run(&workloads.Alltoall{MessageBytes: 2 << 10, Iterations: 1},
			dragonfly.RunOptions{Iterations: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got := sha(renderResults([]dragonfly.Result{res})); got != goldenLargeSingle {
			t.Fatalf("shards=%d drifted from the serial golden hash:\n got %s\nwant %s",
				shards, got, goldenLargeSingle)
		}
	}
}

// TestShardedGoldenLargeRunConcurrent reruns the two-application concurrent
// golden on a sharded system: the MPI scheduler, rank pinning and noise all
// drive the sharded engine, and the output hash must not move.
func TestShardedGoldenLargeRunConcurrent(t *testing.T) {
	sys := shardedSystem(t, dragonfly.Large, 1, 4)
	victim, err := sys.Allocate(dragonfly.GroupStriped, 16)
	if err != nil {
		t.Fatal(err)
	}
	neighbor, err := sys.Allocate(dragonfly.GroupStriped, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := dragonfly.NewWorkload("halo3d", neighbor.Size(), workloads.SizeFor("halo3d", 2<<10))
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.RunConcurrent([]dragonfly.JobRun{
		{
			Job:      victim,
			Workload: &workloads.Alltoall{MessageBytes: 2 << 10, Iterations: 1},
			Options:  dragonfly.RunOptions{Iterations: 2},
		},
		{
			Job:      neighbor,
			Workload: nw,
			Options: dragonfly.RunOptions{
				Routing:    dragonfly.StaticRouting(dragonfly.AdaptiveHighBias),
				Iterations: 2,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sha(renderResults(results)); got != goldenLargeConcurrent {
		t.Fatalf("sharded RunConcurrent drifted from the serial golden hash:\n got %s\nwant %s",
			got, goldenLargeConcurrent)
	}
}

// TestShardedResetMatchesFresh pins the harness pooling contract on a
// sharded system: Reset reruns byte-identically and keeps the sharding
// attachment.
func TestShardedResetMatchesFresh(t *testing.T) {
	sys := shardedSystem(t, dragonfly.SmallGeometry(4), 9, 2)
	want := runLadderJob(t, sys)
	if err := sys.Reset(9); err != nil {
		t.Fatal(err)
	}
	if got := sys.Shards(); got != 2 {
		t.Fatalf("Reset dropped sharding: Shards() = %d, want 2", got)
	}
	if got := runLadderJob(t, sys); got != want {
		t.Fatalf("sharded rerun after Reset diverges:\n got: %s\nwant: %s", got, want)
	}
}

// TestShardsResolution pins the WithShards fallback ladder: defaults stay
// serial, single-group geometries fall back to serial, requests clamp to the
// group count, and 0 selects automatic sizing.
func TestShardsResolution(t *testing.T) {
	if got := shardedSystem(t, dragonfly.SmallGeometry(4), 1, 1).Shards(); got != 1 {
		t.Fatalf("WithShards(1) → Shards() = %d, want 1", got)
	}
	if got := shardedSystem(t, dragonfly.SmallGeometry(1), 1, 8).Shards(); got != 1 {
		t.Fatalf("single-group system → Shards() = %d, want serial fallback 1", got)
	}
	if got := shardedSystem(t, dragonfly.SmallGeometry(3), 1, 8).Shards(); got != 3 {
		t.Fatalf("WithShards(8) on 3 groups → Shards() = %d, want clamp to 3", got)
	}
	auto := shardedSystem(t, dragonfly.SmallGeometry(4), 1, 0).Shards()
	wantAuto := runtime.GOMAXPROCS(0)
	if wantAuto > 4 {
		wantAuto = 4
	}
	if auto != wantAuto {
		t.Fatalf("WithShards(0) → Shards() = %d, want %d (GOMAXPROCS clamped to groups)", auto, wantAuto)
	}
	sys, err := dragonfly.New(dragonfly.WithGeometry(dragonfly.SmallGeometry(4)))
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Shards(); got != 1 {
		t.Fatalf("default system → Shards() = %d, want serial 1", got)
	}
	if sys.Sharded() != nil {
		t.Fatal("default system exposes a sharded driver")
	}
	if _, err := dragonfly.New(dragonfly.WithShards(-1)); err == nil {
		t.Fatal("WithShards(-1) accepted")
	}
}

// TestParseShards pins the CLI grammar of the -shards flag.
func TestParseShards(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
		ok   bool
	}{
		{"", 0, true},
		{"auto", 0, true},
		{" AUTO ", 0, true},
		{"1", 1, true},
		{"8", 8, true},
		{"0", 0, false},
		{"-2", 0, false},
		{"four", 0, false},
		{"4.5", 0, false},
	} {
		got, err := dragonfly.ParseShards(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseShards(%q) = %d, %v; want %d, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// TestShardedJobRunCancelNoGoroutineLeak is the sharded half of the
// goroutine-leak contract: a Job.Run cancelled mid-run on a sharded system
// releases every rank goroutine and leaves no window workers behind.
func TestShardedJobRunCancelNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	sys := shardedSystem(t, dragonfly.SmallGeometry(4), 23, 4)
	job, err := sys.Allocate(dragonfly.GroupStriped, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = job.Run(&workloads.Alltoall{MessageBytes: 4 << 10, Iterations: 1},
		dragonfly.RunOptions{
			Iterations: 50,
			Context:    ctx,
			HostNoise: func(rank int) int64 {
				cancel()
				return 0
			},
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sharded Job.Run returned %v, want context.Canceled", err)
	}
	testutil.WaitGoroutines(t, base)
}

// TestShardedRunConcurrentCancelNoGoroutineLeak covers the multi-job
// scheduler path on a sharded system cancelled mid-run.
func TestShardedRunConcurrentCancelNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	sys := shardedSystem(t, dragonfly.SmallGeometry(4), 24, 2)
	victim, err := sys.Allocate(dragonfly.GroupStriped, 8)
	if err != nil {
		t.Fatal(err)
	}
	neighbor, err := sys.Allocate(dragonfly.GroupStriped, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runs := []dragonfly.JobRun{
		{
			Job:      victim,
			Workload: &workloads.Alltoall{MessageBytes: 4 << 10, Iterations: 1},
			Options: dragonfly.RunOptions{
				Iterations: 50,
				Context:    ctx,
				HostNoise: func(rank int) int64 {
					cancel()
					return 0
				},
			},
		},
		{
			Job:      neighbor,
			Workload: workloads.NewHalo3D(8, 128, 2),
			Options:  dragonfly.RunOptions{Iterations: 2},
		},
	}
	if _, err := sys.RunConcurrent(runs); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancellation returned %v, want context.Canceled", err)
	}
	testutil.WaitGoroutines(t, base)
}
