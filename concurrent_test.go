package dragonfly_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"dragonfly"
	"dragonfly/internal/workloads"
)

// concurrentSystem builds the standard two-job test fixture: an alltoall
// victim and a halo3d neighbor on one four-group machine.
func concurrentSystem(t *testing.T, seed int64) (*dragonfly.System, []dragonfly.JobRun) {
	t.Helper()
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.SmallGeometry(4)),
		dragonfly.WithSeed(seed),
	)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := sys.Allocate(dragonfly.GroupStriped, 8)
	if err != nil {
		t.Fatal(err)
	}
	neighbor, err := sys.Allocate(dragonfly.GroupStriped, 8)
	if err != nil {
		t.Fatal(err)
	}
	return sys, []dragonfly.JobRun{
		{
			Job:      victim,
			Workload: &workloads.Alltoall{MessageBytes: 4 << 10, Iterations: 1},
			Options: dragonfly.RunOptions{
				Routing:    dragonfly.StaticRouting(dragonfly.Adaptive),
				Iterations: 3,
			},
		},
		{
			Job:      neighbor,
			Workload: workloads.NewHalo3D(8, 128, 2),
			Options:  dragonfly.RunOptions{Iterations: 2},
		},
	}
}

// TestRunConcurrentDeterministic is the concurrency half of the determinism
// contract: the same seed must produce byte-identical per-job Results, both
// across two identically built systems and across Reset repeats of one
// system.
func TestRunConcurrentDeterministic(t *testing.T) {
	sysA, runsA := concurrentSystem(t, 11)
	resA, err := sysA.RunConcurrent(runsA)
	if err != nil {
		t.Fatal(err)
	}
	sysB, runsB := concurrentSystem(t, 11)
	resB, err := sysB.RunConcurrent(runsB)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("two identically-built systems measured differently:\n%+v\n%+v", resA, resB)
	}

	// Reset and re-run on the same system: still identical.
	if err := sysA.Reset(11); err != nil {
		t.Fatal(err)
	}
	victim, err := sysA.Allocate(dragonfly.GroupStriped, 8)
	if err != nil {
		t.Fatal(err)
	}
	neighbor, err := sysA.Allocate(dragonfly.GroupStriped, 8)
	if err != nil {
		t.Fatal(err)
	}
	runsA[0].Job, runsA[1].Job = victim, neighbor
	resC, err := sysA.RunConcurrent(runsA)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resA, resC) {
		t.Fatalf("Reset re-run measured differently:\n%+v\n%+v", resA, resC)
	}
}

// TestRunConcurrentSingleMatchesJobRun pins that Job.Run is the single-job
// special case of RunConcurrent: the two entry points produce identical
// Results on identically built systems (the golden-table hashes pin the same
// equivalence at experiment scale).
func TestRunConcurrentSingleMatchesJobRun(t *testing.T) {
	w := &workloads.Alltoall{MessageBytes: 4 << 10, Iterations: 1}
	opts := dragonfly.RunOptions{
		Routing:          dragonfly.StaticRouting(dragonfly.AdaptiveHighBias),
		Iterations:       3,
		RecordDeliveries: true,
	}
	build := func() (*dragonfly.System, *dragonfly.Job) {
		t.Helper()
		sys, err := dragonfly.New(dragonfly.WithGeometry(dragonfly.SmallGeometry(2)), dragonfly.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		sys.StartNoise(dragonfly.NoiseConfig{Pattern: dragonfly.NoiseUniform, Nodes: 4})
		job, err := sys.Allocate(dragonfly.GroupStriped, 4)
		if err != nil {
			t.Fatal(err)
		}
		return sys, job
	}
	_, jobA := build()
	direct, err := jobA.Run(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	sysB, jobB := build()
	via, err := sysB.RunConcurrent([]dragonfly.JobRun{{Job: jobB, Workload: w, Options: opts}})
	if err != nil {
		t.Fatal(err)
	}
	if len(via) != 1 {
		t.Fatalf("got %d results, want 1", len(via))
	}
	if !reflect.DeepEqual(direct, via[0]) {
		t.Fatalf("Job.Run and single-job RunConcurrent disagree:\n%+v\n%+v", direct, via[0])
	}
	// The single-job capture is fabric-wide: background noise deliveries show
	// up alongside the job's own.
	if len(direct.Deliveries) == 0 {
		t.Fatal("RecordDeliveries captured nothing")
	}
}

// TestRunConcurrentIsolation checks that the per-job measurements are
// correctly isolated even though the jobs finish at different simulated
// times: each job reports its own iteration count, its own (positive)
// traffic, and the victim measurably slows down compared to running alone.
func TestRunConcurrentIsolation(t *testing.T) {
	sysAlone, runsAlone := concurrentSystem(t, 3)
	alone, err := sysAlone.RunConcurrent(runsAlone[:1])
	if err != nil {
		t.Fatal(err)
	}
	sys, runs := concurrentSystem(t, 3)
	res, err := sys.RunConcurrent(runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	if got := len(res[0].Times); got != 3 {
		t.Fatalf("victim measured %d iterations, want 3", got)
	}
	if got := len(res[1].Times); got != 2 {
		t.Fatalf("neighbor measured %d iterations, want 2", got)
	}
	for i, r := range res {
		if r.Counters.RequestPackets == 0 {
			t.Fatalf("job %d moved no packets", i)
		}
		if r.Time() <= 0 {
			t.Fatalf("job %d took no simulated time", i)
		}
	}
	// The alltoall victim's node-disjoint NIC counters are its own: the same
	// packet count as alone, interference or not.
	if res[0].Counters.RequestPackets != alone[0].Counters.RequestPackets {
		t.Fatalf("victim packet count changed under co-tenancy: %d vs %d alone",
			res[0].Counters.RequestPackets, alone[0].Counters.RequestPackets)
	}
	// And a real neighbor job must cost the victim simulated time.
	if res[0].Time() <= alone[0].Time() {
		t.Fatalf("victim did not slow down next to a real neighbor: %d vs %d alone",
			res[0].Time(), alone[0].Time())
	}
}

// TestRunConcurrentRecordDeliveriesFiltered: in a multi-job run each job's
// delivery capture covers only transfers touching its own nodes.
func TestRunConcurrentRecordDeliveriesFiltered(t *testing.T) {
	sys, runs := concurrentSystem(t, 9)
	runs[0].Options.RecordDeliveries = true
	runs[1].Options.RecordDeliveries = true
	res, err := sys.RunConcurrent(runs)
	if err != nil {
		t.Fatal(err)
	}
	for j, r := range res {
		if len(r.Deliveries) == 0 {
			t.Fatalf("job %d captured no deliveries", j)
		}
		nodes := make(map[dragonfly.NodeID]bool)
		for _, n := range runs[j].Job.Nodes() {
			nodes[n] = true
		}
		for _, d := range r.Deliveries {
			if !nodes[d.Src] && !nodes[d.Dst] {
				t.Fatalf("job %d captured a foreign delivery %d -> %d", j, d.Src, d.Dst)
			}
		}
	}
}

// TestRunConcurrentValidation covers the argument contract.
func TestRunConcurrentValidation(t *testing.T) {
	sys, runs := concurrentSystem(t, 2)
	other, otherRuns := concurrentSystem(t, 2)

	if _, err := sys.RunConcurrent(nil); err == nil {
		t.Fatal("empty run list accepted")
	}
	bad := []dragonfly.JobRun{runs[0], {Job: nil, Workload: runs[1].Workload}}
	if _, err := sys.RunConcurrent(bad); err == nil {
		t.Fatal("nil job accepted")
	}
	bad = []dragonfly.JobRun{runs[0], otherRuns[1]}
	if _, err := sys.RunConcurrent(bad); err == nil || !strings.Contains(err.Error(), "different system") {
		t.Fatalf("foreign job: err = %v", err)
	}
	bad = []dragonfly.JobRun{runs[0], {Job: runs[1].Job}}
	if _, err := sys.RunConcurrent(bad); err == nil || !strings.Contains(err.Error(), "nil workload") {
		t.Fatalf("nil workload: err = %v", err)
	}
	bad = []dragonfly.JobRun{runs[0], {Job: runs[0].Job, Workload: runs[1].Workload}}
	if _, err := sys.RunConcurrent(bad); err == nil || !strings.Contains(err.Error(), "more than once") {
		t.Fatalf("duplicate job: err = %v", err)
	}
	if err := other.Reset(4); err != nil {
		t.Fatal(err)
	}
	if _, err := other.RunConcurrent(otherRuns); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale job: err = %v", err)
	}
}

// TestRunConcurrentContextCancellation: a pre-cancelled per-job context stops
// the whole run before the first iteration.
func TestRunConcurrentContextCancellation(t *testing.T) {
	sys, runs := concurrentSystem(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runs[1].Options.Context = ctx
	res, err := sys.RunConcurrent(runs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if len(res) != 2 {
		t.Fatalf("cancelled run returned %d partial results, want 2", len(res))
	}
	if len(res[0].Times) != 0 {
		t.Fatal("cancelled run still measured iterations")
	}
}
