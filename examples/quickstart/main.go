// Quickstart: build a small Dragonfly system, run a ping-pong between two
// groups under two routing modes, and print the execution times and the NIC
// counters the application-aware library would consume.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
	"dragonfly/internal/workloads"
)

func main() {
	// 1. Build the topology: four Aries-like groups (reduced geometry so the
	//    example runs instantly).
	cfg := topo.SmallConfig(4)
	t, err := topo.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d groups, %d routers, %d nodes\n",
		cfg.Groups, t.NumRouters(), t.NumNodes())

	// 2. Build the routing policy (UGAL with the Aries bias levels), the
	//    discrete-event engine and the fabric.
	policy, err := routing.NewPolicy(t, routing.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	engine := sim.NewEngine(42)
	fabric, err := network.New(engine, t, policy, network.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Pick two nodes in different groups (the interesting case for the
	//    paper) and wrap them in an allocation.
	a, b, err := alloc.PairForClass(t, topo.AllocInterGroups)
	if err != nil {
		log.Fatal(err)
	}
	job := alloc.NewAllocation(t, []topo.NodeID{a, b})
	fmt.Printf("job: node %d <-> node %d (%s)\n\n", a, b, t.Classify(a, b))

	// 4. Run the same ping-pong under Adaptive and Adaptive-with-High-Bias
	//    routing and compare.
	const messageBytes = 64 << 10
	for _, mode := range []routing.Mode{routing.Adaptive, routing.AdaptiveHighBias} {
		comm, err := mpi.NewComm(fabric, job, mpi.Config{
			Routing: func(int) mpi.RoutingProvider { return mpi.StaticRouting{Mode: mode} },
		})
		if err != nil {
			log.Fatal(err)
		}
		before := fabric.NodeCounters(a)
		start := engine.Now()
		w := &workloads.PingPong{MessageBytes: messageBytes, Iterations: 5}
		if err := comm.Run(w.Run); err != nil {
			log.Fatal(err)
		}
		delta := fabric.NodeCounters(a).Sub(before)
		fmt.Printf("%-28s time=%8d cycles   L=%8.1f cycles   s=%5.2f   non-minimal=%4.1f%%\n",
			mode.Name(), engine.Now()-start, delta.AvgPacketLatency(),
			delta.StallRatio(), delta.NonMinimalFraction()*100)
	}

	// 5. The same exchange with the paper's application-aware selector making
	//    the per-message decision.
	selector := core.MustNew(core.DefaultConfig())
	comm, err := mpi.NewComm(fabric, job, mpi.Config{
		Routing: func(int) mpi.RoutingProvider { return mpi.AppAwareRouting{Selector: selector} },
	})
	if err != nil {
		log.Fatal(err)
	}
	start := engine.Now()
	w := &workloads.PingPong{MessageBytes: messageBytes, Iterations: 5}
	if err := comm.Run(w.Run); err != nil {
		log.Fatal(err)
	}
	st := selector.Stats()
	fmt.Printf("%-28s time=%8d cycles   %.0f%% of bytes sent with Default routing (%d switches)\n",
		"Application-Aware", engine.Now()-start, st.DefaultTrafficFraction()*100, st.Switches)
}
