// Quickstart: build a small Dragonfly system through the public dragonfly
// facade, run a ping-pong between two groups under two routing modes and the
// application-aware selector, and print the execution times and the NIC
// counters the selector consumes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dragonfly"
	"dragonfly/internal/workloads"
)

func main() {
	// One call stands up the whole simulated system: topology, routing
	// policy, event engine, fabric and the allocation random stream.
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.SmallGeometry(4)),
		dragonfly.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	t := sys.Topology()
	fmt.Printf("topology: %d groups, %d routers, %d nodes\n",
		t.Config().Groups, t.NumRouters(), t.NumNodes())

	// A two-node job in different groups — the interesting case for the paper.
	job, err := sys.AllocatePair(dragonfly.InterGroups)
	if err != nil {
		log.Fatal(err)
	}
	a, b := job.Nodes()[0], job.Nodes()[1]
	fmt.Printf("job: node %d <-> node %d (%s)\n\n", a, b, t.Classify(a, b))

	// The same ping-pong under Adaptive, Adaptive-with-High-Bias, and the
	// paper's application-aware selector making the per-message decision.
	w := &workloads.PingPong{MessageBytes: 64 << 10, Iterations: 5}
	for _, mode := range []dragonfly.Mode{dragonfly.Adaptive, dragonfly.AdaptiveHighBias} {
		res, err := job.Run(w, dragonfly.RunOptions{Routing: dragonfly.StaticRouting(mode)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s time=%8d cycles   L=%8.1f cycles   s=%5.2f   non-minimal=%4.1f%%\n",
			mode.Name(), res.Time(), res.Counters.AvgPacketLatency(),
			res.Counters.StallRatio(), res.Counters.NonMinimalFraction()*100)
	}
	res, err := job.Run(w, dragonfly.RunOptions{Routing: dragonfly.AppAware()})
	if err != nil {
		log.Fatal(err)
	}
	st := res.SelectorStats
	fmt.Printf("%-28s time=%8d cycles   %.0f%% of bytes sent with Default routing (%d switches)\n",
		"Application-Aware", res.Time(), st.DefaultTrafficFraction()*100, st.Switches)
}
