// Scheduler example: run the same synthetic batch workload through the batch
// scheduler under three placement policies (contiguous, random, hybrid) and
// compare queue waiting times, placement fragmentation and machine
// utilization. It illustrates the allocation-based interference mitigation the
// paper's related work discusses, which the application-aware routing library
// complements at the routing level.
//
// The scheduler drives the event engine itself, so this example uses the
// facade's escape hatches (System.Fabric, System.Engine) instead of Job.Run.
//
// Run with:
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"

	"dragonfly"
	"dragonfly/internal/sched"
)

func main() {
	// The same job mix is replayed under every placement policy.
	mix := sched.DefaultMixConfig()
	mix.Jobs = 20
	mix.MaxNodes = 24
	mix.Seed = 42

	policies := []sched.AllocationPolicy{sched.PlaceContiguous, sched.PlaceRandom, sched.PlaceHybrid}
	fmt.Printf("%-14s %10s %14s %14s %12s %12s\n",
		"placement", "finished", "mean wait", "max wait", "groups/job", "utilization")
	for _, policy := range policies {
		stats, packets := runMix(policy, mix)
		fmt.Printf("%-14s %10d %14.0f %14d %12.2f %11.1f%%   (%d batch packets)\n",
			policy, stats.Finished, stats.MeanWaitCycles, stats.MaxWaitCycles,
			stats.MeanGroupsSpanned, stats.Utilization*100, packets)
	}
	fmt.Println()
	fmt.Println("Contiguous placement keeps each job inside few groups (low fragmentation) at the")
	fmt.Println("cost of longer queue waits; random placement does the opposite; hybrid scatters")
	fmt.Println("only the communication-intensive jobs. None of them isolates jobs on a Dragonfly:")
	fmt.Println("adaptive non-minimal routing still sends packets through groups owned by others,")
	fmt.Println("which is why the paper mitigates noise at the routing level instead.")
}

// runMix builds a fresh machine, schedules the mix under the given policy and
// returns the scheduler statistics and the number of packets the batch jobs
// injected.
func runMix(policy sched.AllocationPolicy, mix sched.MixConfig) (sched.Stats, uint64) {
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.SmallGeometry(4)),
		dragonfly.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}

	specs, err := sched.GenerateMix(mix, sys.Topology().NumNodes())
	if err != nil {
		log.Fatal(err)
	}
	s := sched.New(sys.Fabric(), sched.Config{Placement: policy, Backfill: true, Seed: 7})
	for _, spec := range specs {
		if _, err := s.Submit(spec); err != nil {
			log.Fatal(err)
		}
	}
	s.Start()
	if err := sys.Engine().Run(); err != nil {
		log.Fatal(err)
	}
	return s.Stats(), sys.Fabric().PacketsInjected()
}
