// Collectives example: run the same logical allreduce and alltoall with
// different collective algorithms (recursive doubling / ring / Rabenseifner,
// pairwise / Bruck / spread) under the Adaptive and Adaptive-with-High-Bias
// routing modes. The traffic pattern an algorithm generates changes which
// routing mode wins — the same interaction the paper observes between
// workloads and routing, one level lower in the stack.
//
// Run with:
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"log"

	"dragonfly/internal/alloc"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

const messageBytes = 16 << 10

func main() {
	algorithms := []struct {
		name string
		body func(r *mpi.Rank)
	}{
		{"allreduce/recursive-doubling", func(r *mpi.Rank) { r.Allreduce(messageBytes) }},
		{"allreduce/ring", func(r *mpi.Rank) { r.AllreduceRing(messageBytes) }},
		{"allreduce/rabenseifner", func(r *mpi.Rank) { r.AllreduceRabenseifner(messageBytes) }},
		{"alltoall/pairwise", func(r *mpi.Rank) { r.Alltoall(messageBytes) }},
		{"alltoall/bruck", func(r *mpi.Rank) { r.AlltoallBruck(messageBytes) }},
		{"alltoall/spread", func(r *mpi.Rank) { r.AlltoallSpread(messageBytes) }},
	}

	fmt.Printf("%-30s %18s %18s %10s\n", "algorithm", "Adaptive (cycles)", "HighBias (cycles)", "winner")
	for _, a := range algorithms {
		adaptive := measure(a.body, routing.Adaptive)
		biased := measure(a.body, routing.AdaptiveHighBias)
		winner := "Adaptive"
		if biased < adaptive {
			winner = "HighBias"
		}
		fmt.Printf("%-30s %18d %18d %10s\n", a.name, adaptive, biased, winner)
	}
	fmt.Println()
	fmt.Println("The size-tuned dispatcher (mpi.Tuning) picks the algorithm per message size the")
	fmt.Println("way production MPI libraries do; combine it with the application-aware selector")
	fmt.Println("(core.Selector) to adapt both the algorithm and the routing mode at runtime.")
}

// measure runs the collective once on a fresh 16-rank system with the given
// routing mode and returns the elapsed simulated cycles.
func measure(body func(r *mpi.Rank), mode routing.Mode) sim.Time {
	t, err := topo.New(topo.SmallConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	policy, err := routing.NewPolicy(t, routing.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	engine := sim.NewEngine(3)
	fabric, err := network.New(engine, t, policy, network.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	job, err := alloc.Allocate(t, alloc.GroupStriped, 16, engine.Rand(), nil)
	if err != nil {
		log.Fatal(err)
	}
	comm, err := mpi.NewComm(fabric, job, mpi.Config{
		Routing: func(int) mpi.RoutingProvider { return mpi.StaticRouting{Mode: mode} },
	})
	if err != nil {
		log.Fatal(err)
	}
	start := engine.Now()
	if err := comm.Run(body); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < comm.Size(); i++ {
		if err := comm.Rank(i).Err(); err != nil {
			log.Fatal(err)
		}
	}
	return engine.Now() - start
}
