// Collectives example: run the same logical allreduce and alltoall with
// different collective algorithms (recursive doubling / ring / Rabenseifner,
// pairwise / Bruck / spread) under the Adaptive and Adaptive-with-High-Bias
// routing modes. The traffic pattern an algorithm generates changes which
// routing mode wins — the same interaction the paper observes between
// workloads and routing, one level lower in the stack.
//
// Run with:
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"log"

	"dragonfly"
)

const messageBytes = 16 << 10

func main() {
	algorithms := []struct {
		name string
		body func(r *dragonfly.Rank)
	}{
		{"allreduce/recursive-doubling", func(r *dragonfly.Rank) { r.Allreduce(messageBytes) }},
		{"allreduce/ring", func(r *dragonfly.Rank) { r.AllreduceRing(messageBytes) }},
		{"allreduce/rabenseifner", func(r *dragonfly.Rank) { r.AllreduceRabenseifner(messageBytes) }},
		{"alltoall/pairwise", func(r *dragonfly.Rank) { r.Alltoall(messageBytes) }},
		{"alltoall/bruck", func(r *dragonfly.Rank) { r.AlltoallBruck(messageBytes) }},
		{"alltoall/spread", func(r *dragonfly.Rank) { r.AlltoallSpread(messageBytes) }},
	}

	fmt.Printf("%-30s %18s %18s %10s\n", "algorithm", "Adaptive (cycles)", "HighBias (cycles)", "winner")
	for _, a := range algorithms {
		adaptive := measure(a.name, a.body, dragonfly.Adaptive)
		biased := measure(a.name, a.body, dragonfly.AdaptiveHighBias)
		winner := "Adaptive"
		if biased < adaptive {
			winner = "HighBias"
		}
		fmt.Printf("%-30s %18d %18d %10s\n", a.name, adaptive, biased, winner)
	}
	fmt.Println()
	fmt.Println("The size-tuned dispatcher (mpi.Tuning) picks the algorithm per message size the")
	fmt.Println("way production MPI libraries do; combine it with the application-aware selector")
	fmt.Println("(dragonfly.AppAware) to adapt both the algorithm and the routing mode at runtime.")
}

// measure runs the collective once on a fresh 16-rank system with the given
// routing mode and returns the elapsed simulated cycles.
func measure(name string, body func(r *dragonfly.Rank), mode dragonfly.Mode) int64 {
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.SmallGeometry(4)),
		dragonfly.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	job, err := sys.Allocate(dragonfly.GroupStriped, 16)
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Run(dragonfly.WorkloadFunc(name, body), dragonfly.RunOptions{
		Routing: dragonfly.StaticRouting(mode),
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.Time()
}
