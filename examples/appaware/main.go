// Appaware example: using the application-aware routing library (the paper's
// core contribution) directly on a custom communication pattern. A synthetic
// application alternates latency-bound phases (many small messages) with
// bandwidth-bound phases (large transfers); the selector switches routing mode
// between phases based on the NIC counters it observes.
//
// The example also shows the open half of the facade: instead of the canned
// dragonfly.AppAware configuration it builds its own dragonfly.Routing, so it
// can keep references to the per-rank selectors and inspect the network state
// they ended up believing in.
//
// Run with:
//
//	go run ./examples/appaware
package main

import (
	"fmt"
	"log"

	"dragonfly"
	"dragonfly/internal/core"
	"dragonfly/internal/mpi"
)

func main() {
	const ranks = 12
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.SmallGeometry(4)),
		dragonfly.WithSeed(11),
		dragonfly.WithNoise(dragonfly.NoiseConfig{Pattern: dragonfly.NoiseUniform, Nodes: 16}),
	)
	if err != nil {
		log.Fatal(err)
	}
	// WithNoise starts the background job as soon as the measured job is
	// placed, on disjoint nodes.
	job, err := sys.Allocate(dragonfly.GroupStriped, ranks)
	if err != nil {
		log.Fatal(err)
	}

	// One selector per rank, exactly as the LD_PRELOAD library keeps one state
	// per process. We keep references so we can print per-rank state at the
	// end — the part the canned dragonfly.AppAware() hides.
	var selectors []*core.Selector
	appAware := dragonfly.Routing{
		Name: "AppAware",
		Provider: func(rank int) dragonfly.RoutingProvider {
			s := core.MustNew(core.DefaultConfig())
			selectors = append(selectors, s)
			return mpi.AppAwareRouting{Selector: s}
		},
		Stats: func() dragonfly.SelectorStats {
			var agg dragonfly.SelectorStats
			for _, s := range selectors {
				agg.Add(s.Stats())
			}
			return agg
		},
	}

	// The custom application: a ring exchange of small control messages
	// (latency bound), then a large-block shift (bandwidth bound), repeated.
	program := dragonfly.WorkloadFunc("phased-ring", func(r *dragonfly.Rank) {
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		for phase := 0; phase < 4; phase++ {
			// Latency-bound phase: 32 control messages around the ring.
			for i := 0; i < 32; i++ {
				r.SendRecv(next, 64, prev, dragonfly.PointToPoint)
			}
			// Compute phase.
			r.Compute(25_000)
			// Bandwidth-bound phase: one large shift around the ring.
			r.SendRecv(next, 256<<10, prev, dragonfly.PointToPoint)
		}
	})

	res, err := job.Run(program, dragonfly.RunOptions{Routing: appAware})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom application finished in %d cycles on %d ranks\n\n", res.Time(), ranks)

	agg := res.SelectorStats
	fmt.Println("application-aware selector statistics (aggregated over ranks):")
	fmt.Printf("  messages routed:            %d (%d bytes)\n", agg.Messages, agg.Bytes)
	fmt.Printf("  sent with Default routing:  %d messages, %.1f%% of bytes\n",
		agg.DefaultMessages, agg.DefaultTrafficFraction()*100)
	fmt.Printf("  sent with High Bias:        %d messages\n", agg.BiasMessages)
	fmt.Printf("  Algorithm 1 evaluations:    %d (%d counter reads, %d mode switches)\n",
		agg.Evaluations, agg.CounterReads, agg.Switches)

	// Show the network state the first rank's selector ended up believing in.
	ad, adOK, bias, biasOK := selectors[0].ObservedParams()
	if adOK {
		fmt.Printf("  rank 0 view of Adaptive:    L=%.0f cycles, s=%.2f\n", ad.LatencyCycles, ad.StallRatio)
	}
	if biasOK {
		fmt.Printf("  rank 0 view of High Bias:   L=%.0f cycles, s=%.2f\n", bias.LatencyCycles, bias.StallRatio)
	}
}
