// Appaware example: using the application-aware routing library (the paper's
// core contribution) directly on a custom communication pattern. A synthetic
// application alternates latency-bound phases (many small messages) with
// bandwidth-bound phases (large transfers); the selector switches routing mode
// between phases based on the NIC counters it observes.
//
// Run with:
//
//	go run ./examples/appaware
package main

import (
	"fmt"
	"log"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

func main() {
	const ranks = 12
	t := topo.MustNew(topo.SmallConfig(4))
	policy := routing.MustNewPolicy(t, routing.DefaultParams())
	engine := sim.NewEngine(11)
	fabric := network.MustNew(engine, t, policy, network.DefaultConfig())

	job := alloc.MustAllocate(t, alloc.GroupStriped, ranks, nil, nil)
	other := alloc.MustAllocate(t, alloc.RandomScatter, 16, engine.Rand(), alloc.ExcludeSet(job))
	gen := noise.MustNewGenerator(fabric, other.Nodes(), noise.DefaultGeneratorConfig())
	gen.Start(1 << 50)

	// One selector per rank, exactly as the LD_PRELOAD library keeps one state
	// per process. We keep references so we can print statistics at the end.
	selectors := make([]*core.Selector, 0, ranks)
	comm, err := mpi.NewComm(fabric, job, mpi.Config{
		Routing: func(rank int) mpi.RoutingProvider {
			cfg := core.DefaultConfig()
			s := core.MustNew(cfg)
			selectors = append(selectors, s)
			return mpi.AppAwareRouting{Selector: s}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The custom application: a ring exchange of small control messages
	// (latency bound), then a large-block shift (bandwidth bound), repeated.
	program := func(r *mpi.Rank) {
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		for phase := 0; phase < 4; phase++ {
			// Latency-bound phase: 32 control messages around the ring.
			for i := 0; i < 32; i++ {
				r.SendRecv(next, 64, prev, core.PointToPoint)
			}
			// Compute phase.
			r.Compute(25_000)
			// Bandwidth-bound phase: one large shift around the ring.
			r.SendRecv(next, 256<<10, prev, core.PointToPoint)
		}
	}

	start := engine.Now()
	if err := comm.Run(program); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom application finished in %d cycles on %d ranks\n\n", engine.Now()-start, ranks)

	var agg core.Stats
	for _, s := range selectors {
		st := s.Stats()
		agg.Messages += st.Messages
		agg.Bytes += st.Bytes
		agg.DefaultMessages += st.DefaultMessages
		agg.DefaultBytes += st.DefaultBytes
		agg.BiasMessages += st.BiasMessages
		agg.BiasBytes += st.BiasBytes
		agg.Evaluations += st.Evaluations
		agg.CounterReads += st.CounterReads
		agg.Switches += st.Switches
	}
	fmt.Println("application-aware selector statistics (aggregated over ranks):")
	fmt.Printf("  messages routed:            %d (%d bytes)\n", agg.Messages, agg.Bytes)
	fmt.Printf("  sent with Default routing:  %d messages, %.1f%% of bytes\n",
		agg.DefaultMessages, agg.DefaultTrafficFraction()*100)
	fmt.Printf("  sent with High Bias:        %d messages\n", agg.BiasMessages)
	fmt.Printf("  Algorithm 1 evaluations:    %d (%d counter reads, %d mode switches)\n",
		agg.Evaluations, agg.CounterReads, agg.Switches)

	// Show the network state the first rank's selector ended up believing in.
	ad, adOK, bias, biasOK := selectors[0].ObservedParams()
	if adOK {
		fmt.Printf("  rank 0 view of Adaptive:    L=%.0f cycles, s=%.2f\n", ad.LatencyCycles, ad.StallRatio)
	}
	if biasOK {
		fmt.Printf("  rank 0 view of High Bias:   L=%.0f cycles, s=%.2f\n", bias.LatencyCycles, bias.StallRatio)
	}
}
