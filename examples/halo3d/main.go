// Halo3d example: a 3D stencil job (the ember halo3d pattern the paper uses)
// sharing the machine with an interfering all-to-all "bully" job. The example
// compares the Default routing, Adaptive with High Bias, and the
// application-aware routing library, reproducing in miniature the halo3d
// columns of the paper's Figure 8.
//
// Run with:
//
//	go run ./examples/halo3d
package main

import (
	"fmt"
	"log"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
	"dragonfly/internal/topo"
	"dragonfly/internal/workloads"
)

func main() {
	const (
		jobNodes   = 27 // 3x3x3 process grid
		noiseNodes = 24
		domainEdge = 384
		iterations = 8
	)

	// One simulated system shared by the measured job and the bully job.
	t := topo.MustNew(topo.Config{
		Groups: 6, ChassisPerGroup: 2, BladesPerChassis: 8, NodesPerBlade: 2,
		GlobalLinksPerRouter: 4, IntraGroupLinkWidth: 3, IntraChassisLinkWidth: 1, GlobalLinkWidth: 2,
	})
	policy := routing.MustNewPolicy(t, routing.DefaultParams())
	engine := sim.NewEngine(7)
	fabric := network.MustNew(engine, t, policy, network.DefaultConfig())

	// The measured job is striped over the groups (a scattered allocation, as
	// on a busy production machine).
	job := alloc.MustAllocate(t, alloc.GroupStriped, jobNodes, nil, nil)
	fmt.Printf("halo3d job: %s\n", job)

	// The interfering job: an all-to-all bully on other nodes.
	bullyAlloc := alloc.MustAllocate(t, alloc.RandomScatter, noiseNodes, engine.Rand(), alloc.ExcludeSet(job))
	bullyCfg := noise.DefaultGeneratorConfig()
	bullyCfg.Pattern = noise.AlltoallBully
	bullyCfg.MessageBytes = 32 << 10
	bullyCfg.IntervalCycles = 8_000
	bully := noise.MustNewGenerator(fabric, bullyAlloc.Nodes(), bullyCfg)
	bully.Start(1 << 50)
	fmt.Printf("bully job:  %s (%s pattern)\n\n", bullyAlloc, bullyCfg.Pattern)

	configs := []struct {
		name    string
		routing func(int) mpi.RoutingProvider
	}{
		{"Default (ADAPTIVE_0)", func(int) mpi.RoutingProvider { return mpi.DefaultRouting() }},
		{"Adaptive High Bias", func(int) mpi.RoutingProvider { return mpi.StaticRouting{Mode: routing.AdaptiveHighBias} }},
		{"Application-Aware", func(int) mpi.RoutingProvider {
			return mpi.AppAwareRouting{Selector: core.MustNew(core.DefaultConfig())}
		}},
	}

	baseline := 0.0
	for _, cfg := range configs {
		comm, err := mpi.NewComm(fabric, job, mpi.Config{Routing: cfg.routing})
		if err != nil {
			log.Fatal(err)
		}
		w := workloads.NewHalo3D(jobNodes, domainEdge, 1)
		times := make([]float64, 0, iterations)
		for i := 0; i < iterations; i++ {
			start := engine.Now()
			if err := comm.Run(w.Run); err != nil {
				log.Fatal(err)
			}
			times = append(times, float64(engine.Now()-start))
		}
		med := stats.Median(times)
		if baseline == 0 {
			baseline = med
		}
		fmt.Printf("%-22s median=%10.0f cycles  qcd=%.3f  normalized=%.2f\n",
			cfg.name, med, stats.QCD(times), med/baseline)
	}
	fmt.Println("\n(normalized < 1 means faster than the Default routing, as in Figure 8)")
}
