// Halo3d example: a 3D stencil job (the ember halo3d pattern the paper uses)
// sharing the machine with an interfering all-to-all "bully" job. The example
// compares the Default routing, Adaptive with High Bias, and the
// application-aware routing library, reproducing in miniature the halo3d
// columns of the paper's Figure 8.
//
// Run with:
//
//	go run ./examples/halo3d
package main

import (
	"fmt"
	"log"

	"dragonfly"
	"dragonfly/internal/stats"
	"dragonfly/internal/workloads"
)

func main() {
	const (
		jobNodes   = 27 // 3x3x3 process grid
		noiseNodes = 24
		domainEdge = 384
		iterations = 8
	)

	// One simulated system shared by the measured job and the bully job.
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.Geometry{
			Groups: 6, ChassisPerGroup: 2, BladesPerChassis: 8, NodesPerBlade: 2,
			GlobalLinksPerRouter: 4, IntraGroupLinkWidth: 3, IntraChassisLinkWidth: 1, GlobalLinkWidth: 2,
		}),
		dragonfly.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The measured job is striped over the groups (a scattered allocation, as
	// on a busy production machine).
	job, err := sys.Allocate(dragonfly.GroupStriped, jobNodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("halo3d job: %s\n", job)

	// The interfering job: an all-to-all bully on other nodes.
	bully := sys.StartNoise(dragonfly.NoiseConfig{
		Pattern:        dragonfly.NoiseBully,
		Nodes:          noiseNodes,
		MessageBytes:   32 << 10,
		IntervalCycles: 8_000,
	})
	if bully == nil {
		log.Fatal("no room for the bully job")
	}
	fmt.Printf("bully job:  %d nodes (%s pattern)\n\n", bully.NumNodes(), dragonfly.NoiseBully)

	configs := []dragonfly.Routing{
		dragonfly.DefaultRouting(),
		dragonfly.StaticRouting(dragonfly.AdaptiveHighBias),
		dragonfly.AppAware(),
	}

	baseline := 0.0
	for _, cfg := range configs {
		w := workloads.NewHalo3D(jobNodes, domainEdge, 1)
		res, err := job.Run(w, dragonfly.RunOptions{Routing: cfg, Iterations: iterations})
		if err != nil {
			log.Fatal(err)
		}
		times := res.TimesFloat()
		med := stats.Median(times)
		if baseline == 0 {
			baseline = med
		}
		fmt.Printf("%-22s median=%10.0f cycles  qcd=%.3f  normalized=%.2f\n",
			cfg.Name, med, stats.QCD(times), med/baseline)
	}
	fmt.Println("\n(normalized < 1 means faster than the Default routing, as in Figure 8)")
}
