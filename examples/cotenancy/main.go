// Co-tenancy example: measure a victim application next to a *real*
// co-running neighbor application instead of a synthetic noise generator.
//
// System.RunConcurrent executes several workload-driven jobs on one shared
// fabric: every job brings its own workload, routing configuration and
// iteration count, a cooperative scheduler interleaves all their ranks
// deterministically, and each job gets its own isolated Result — iteration
// times, NIC counter deltas, router-tile deltas — even though the jobs finish
// at different simulated times.
//
// The example runs an alltoall victim three ways (alone, next to the
// fixed-rate background generator that historically stood in for neighbor
// jobs, and next to an actual halo3d application) under three routing
// configurations, and prints how differently the synthetic stand-in and the
// real neighbor load the victim.
//
// Run with:
//
//	go run ./examples/cotenancy
package main

import (
	"fmt"
	"log"

	"dragonfly"
	"dragonfly/internal/workloads"
)

const (
	jobNodes   = 12
	iterations = 4
	seed       = 42
)

func main() {
	routings := []func() dragonfly.Routing{
		dragonfly.DefaultRouting,
		func() dragonfly.Routing { return dragonfly.StaticRouting(dragonfly.AdaptiveHighBias) },
		dragonfly.AppAware,
	}
	fmt.Printf("%-10s %16s %18s %18s %16s\n",
		"routing", "alone (cycles)", "noise neighbor", "halo3d neighbor", "halo3d's time")
	for _, routing := range routings {
		alone := measure(routing(), "alone")
		noise := measure(routing(), "noise")
		real := measure(routing(), "halo3d")
		fmt.Printf("%-10s %16d %11d (%.2fx) %11d (%.2fx) %16d\n",
			alone[0].Setup, alone[0].Time(),
			noise[0].Time(), float64(noise[0].Time())/float64(alone[0].Time()),
			real[0].Time(), float64(real[0].Time())/float64(alone[0].Time()),
			real[1].Time())
	}
	fmt.Println()
	fmt.Println("A real neighbor application stresses the fabric in correlated phases — bursts,")
	fmt.Println("barriers, quiet compute windows — that the constant-rate generator cannot")
	fmt.Println("produce, so the victim's slowdown (and the best routing mode) can differ from")
	fmt.Println("the synthetic prediction. RunConcurrent also reports the neighbor's own time:")
	fmt.Println("interference is measured in both directions.")
}

// measure builds a fresh machine and measures the alltoall victim under the
// given routing configuration next to the requested neighbor kind.
func measure(routing dragonfly.Routing, neighbor string) []dragonfly.Result {
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.SmallGeometry(4)),
		dragonfly.WithSeed(seed),
	)
	if err != nil {
		log.Fatal(err)
	}
	victim, err := sys.Allocate(dragonfly.GroupStriped, jobNodes)
	if err != nil {
		log.Fatal(err)
	}
	runs := []dragonfly.JobRun{{
		Job:      victim,
		Workload: &workloads.Alltoall{MessageBytes: 8 << 10, Iterations: 1},
		Options:  dragonfly.RunOptions{Routing: routing, Iterations: iterations},
	}}
	switch neighbor {
	case "noise":
		if sys.StartNoise(dragonfly.NoiseConfig{
			Pattern: dragonfly.NoiseUniform, Nodes: jobNodes, IntervalCycles: 12_000,
		}) == nil {
			log.Fatal("no room for the background generator")
		}
	case "halo3d":
		nb, err := sys.Allocate(dragonfly.GroupStriped, jobNodes)
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, dragonfly.JobRun{
			Job:      nb,
			Workload: workloads.NewHalo3D(jobNodes, 256, 2),
			Options:  dragonfly.RunOptions{Iterations: iterations},
		})
	}
	results, err := sys.RunConcurrent(runs)
	if err != nil {
		log.Fatal(err)
	}
	return results
}
