// Telemetry example: run an alltoall next to an interfering "bully" job under
// two routing modes and watch the fabric-wide telemetry — per-tier link
// utilization over time and the group-to-group traffic matrix. It makes the
// mechanism of the paper's §4.1 visible: unbiased adaptive routing spreads the
// same traffic over more global links (and over groups the job does not own),
// while the high-bias mode keeps it on the minimal paths.
//
// Run with:
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"

	"dragonfly"
	"dragonfly/internal/stats"
	"dragonfly/internal/telemetry"
	"dragonfly/internal/workloads"
)

func main() {
	for _, mode := range []dragonfly.Mode{dragonfly.Adaptive, dragonfly.AdaptiveHighBias} {
		observe(mode)
		fmt.Println()
	}
}

// observe runs the scenario under one routing mode and prints the telemetry.
func observe(mode dragonfly.Mode) {
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.SmallGeometry(4)),
		dragonfly.WithSeed(11),
		dragonfly.WithTelemetry(dragonfly.TelemetryConfig{
			IntervalCycles:   40_000,
			TopLinks:         3,
			TrackGroupMatrix: true,
		}),
		// Interfering job: an alltoall bully placed as soon as the measured
		// job is allocated.
		dragonfly.WithNoise(dragonfly.NoiseConfig{Pattern: dragonfly.NoiseBully, Nodes: 12}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Measured job: 16 nodes striped over the groups, running an alltoall.
	job, err := sys.Allocate(dragonfly.GroupStriped, 16)
	if err != nil {
		log.Fatal(err)
	}

	w := &workloads.Alltoall{MessageBytes: 16 << 10, Iterations: 2}
	res, err := job.Run(w, dragonfly.RunOptions{Routing: dragonfly.StaticRouting(mode)})
	if err != nil {
		log.Fatal(err)
	}
	collector := sys.Telemetry()
	collector.Stop()
	collector.Flush()

	maxUtil, _ := collector.Series("max-util")
	stall, _ := collector.Series("stall-ratio")
	fmt.Printf("=== routing %s (%s) ===\n", mode, mode.Name())
	fmt.Printf("alltoall time: %d cycles over %d telemetry intervals\n", res.Time(), len(collector.Samples()))
	fmt.Printf("max link utilization: mean %.3f, peak %.3f; hotspot intervals (>=80%%): %d\n",
		stats.Mean(maxUtil), stats.Max(maxUtil), len(collector.HotspotIntervals(0.8)))
	fmt.Printf("job-observed stall ratio (mean per interval): %.3f\n", stats.Mean(stall))
	fmt.Print(telemetry.RenderGroupHeatmap(collector.AggregateGroupMatrix()))
}
