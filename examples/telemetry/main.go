// Telemetry example: run an alltoall next to an interfering "bully" job under
// two routing modes and watch the fabric-wide telemetry — per-tier link
// utilization over time and the group-to-group traffic matrix. It makes the
// mechanism of the paper's §4.1 visible: unbiased adaptive routing spreads the
// same traffic over more global links (and over groups the job does not own),
// while the high-bias mode keeps it on the minimal paths.
//
// Run with:
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"

	"dragonfly/internal/alloc"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
	"dragonfly/internal/telemetry"
	"dragonfly/internal/topo"
	"dragonfly/internal/workloads"
)

func main() {
	for _, mode := range []routing.Mode{routing.Adaptive, routing.AdaptiveHighBias} {
		observe(mode)
		fmt.Println()
	}
}

// observe runs the scenario under one routing mode and prints the telemetry.
func observe(mode routing.Mode) {
	t, err := topo.New(topo.SmallConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	policy, err := routing.NewPolicy(t, routing.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	engine := sim.NewEngine(11)
	fabric, err := network.New(engine, t, policy, network.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Measured job: 16 nodes striped over the groups, running an alltoall.
	job, err := alloc.Allocate(t, alloc.GroupStriped, 16, engine.Rand(), nil)
	if err != nil {
		log.Fatal(err)
	}
	// Interfering job: an alltoall bully on 12 other nodes.
	bully, err := alloc.Allocate(t, alloc.RandomScatter, 12, engine.Rand(), alloc.ExcludeSet(job))
	if err != nil {
		log.Fatal(err)
	}
	ncfg := noise.DefaultGeneratorConfig()
	ncfg.Pattern = noise.AlltoallBully
	gen, err := noise.FromAllocation(fabric, bully, ncfg)
	if err != nil {
		log.Fatal(err)
	}
	gen.Start(1 << 50)

	collector, err := telemetry.NewCollector(fabric, telemetry.Config{
		IntervalCycles:   40_000,
		TopLinks:         3,
		TrackGroupMatrix: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	collector.Start(1 << 50)

	comm, err := mpi.NewComm(fabric, job, mpi.Config{
		Routing: func(int) mpi.RoutingProvider { return mpi.StaticRouting{Mode: mode} },
	})
	if err != nil {
		log.Fatal(err)
	}
	w := &workloads.Alltoall{MessageBytes: 16 << 10, Iterations: 2}
	start := engine.Now()
	if err := comm.Run(w.Run); err != nil {
		log.Fatal(err)
	}
	collector.Stop()
	collector.Flush()

	maxUtil, _ := collector.Series("max-util")
	stall, _ := collector.Series("stall-ratio")
	fmt.Printf("=== routing %s (%s) ===\n", mode, mode.Name())
	fmt.Printf("alltoall time: %d cycles over %d telemetry intervals\n", engine.Now()-start, len(collector.Samples()))
	fmt.Printf("max link utilization: mean %.3f, peak %.3f; hotspot intervals (>=80%%): %d\n",
		stats.Mean(maxUtil), stats.Max(maxUtil), len(collector.HotspotIntervals(0.8)))
	fmt.Printf("job-observed stall ratio (mean per interval): %.3f\n", stats.Mean(stall))
	fmt.Print(telemetry.RenderGroupHeatmap(collector.AggregateGroupMatrix()))
}
