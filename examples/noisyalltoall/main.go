// Noisy alltoall example: quantifies network noise the way the paper
// prescribes (§3): fix the allocation, use NIC counters (latency and stalls)
// rather than raw execution-time variability, and compare routing modes on the
// same job while an interfering hotspot job congests part of the machine.
//
// Run with:
//
//	go run ./examples/noisyalltoall
package main

import (
	"fmt"
	"log"

	"dragonfly"
	"dragonfly/internal/stats"
	"dragonfly/internal/workloads"
)

func main() {
	const (
		jobNodes     = 16
		messageBytes = 8 << 10
		iterations   = 10
	)
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.Geometry{
			Groups: 5, ChassisPerGroup: 2, BladesPerChassis: 8, NodesPerBlade: 2,
			GlobalLinksPerRouter: 4, IntraGroupLinkWidth: 3, IntraChassisLinkWidth: 1, GlobalLinkWidth: 2,
		}),
		dragonfly.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}

	job, err := sys.Allocate(dragonfly.GroupStriped, jobNodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured job: %s\n", job)

	// Interfering hotspot (incast) job.
	gen := sys.StartNoise(dragonfly.NoiseConfig{
		Pattern:        dragonfly.NoiseHotspot,
		Nodes:          20,
		IntervalCycles: 6_000,
	})
	if gen == nil {
		log.Fatal("no room for the interfering job")
	}
	fmt.Printf("interfering job: %d nodes (%s)\n\n", gen.NumNodes(), dragonfly.NoiseHotspot)

	fmt.Printf("%-28s %12s %12s %10s %10s %14s\n",
		"routing", "median", "qcd(time)", "latency L", "stalls s", "non-minimal %")
	for _, mode := range []dragonfly.Mode{
		dragonfly.Adaptive, dragonfly.IncreasinglyMinimalBias, dragonfly.AdaptiveHighBias,
	} {
		w := &workloads.Alltoall{MessageBytes: messageBytes, Iterations: 1}
		res, err := job.Run(w, dragonfly.RunOptions{
			Routing:    dragonfly.StaticRouting(mode),
			Iterations: iterations,
		})
		if err != nil {
			log.Fatal(err)
		}
		var lats, stalls []float64
		var nonMin float64
		for _, delta := range res.Deltas {
			lats = append(lats, delta.AvgPacketLatency())
			stalls = append(stalls, delta.StallRatio())
			nonMin = delta.NonMinimalFraction() * 100
		}
		fmt.Printf("%-28s %12.0f %12.3f %10.0f %10.2f %14.1f\n",
			mode.Name(), stats.Median(res.TimesFloat()), stats.QCD(res.TimesFloat()),
			stats.Median(lats), stats.Median(stalls), nonMin)
	}
	fmt.Println("\nNIC latency/stalls isolate the network's contribution; execution-time QCD alone")
	fmt.Println("mixes in host effects — the distinction §3.3 of the paper insists on.")
}
