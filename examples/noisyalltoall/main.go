// Noisy alltoall example: quantifies network noise the way the paper
// prescribes (§3): fix the allocation, use NIC counters (latency and stalls)
// rather than raw execution-time variability, and compare routing modes on the
// same job while an interfering hotspot job congests part of the machine.
//
// Run with:
//
//	go run ./examples/noisyalltoall
package main

import (
	"fmt"
	"log"

	"dragonfly/internal/alloc"
	"dragonfly/internal/counters"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
	"dragonfly/internal/topo"
	"dragonfly/internal/workloads"
)

func jobCounters(f *network.Fabric, a *alloc.Allocation) counters.NIC {
	var total counters.NIC
	for _, n := range a.Nodes() {
		total.Add(f.NodeCounters(n))
	}
	return total
}

func main() {
	const (
		jobNodes     = 16
		messageBytes = 8 << 10
		iterations   = 10
	)
	t := topo.MustNew(topo.Config{
		Groups: 5, ChassisPerGroup: 2, BladesPerChassis: 8, NodesPerBlade: 2,
		GlobalLinksPerRouter: 4, IntraGroupLinkWidth: 3, IntraChassisLinkWidth: 1, GlobalLinkWidth: 2,
	})
	policy := routing.MustNewPolicy(t, routing.DefaultParams())
	engine := sim.NewEngine(3)
	fabric := network.MustNew(engine, t, policy, network.DefaultConfig())

	job := alloc.MustAllocate(t, alloc.GroupStriped, jobNodes, nil, nil)
	fmt.Printf("measured job: %s\n", job)

	// Interfering hotspot (incast) job.
	other := alloc.MustAllocate(t, alloc.RandomScatter, 20, engine.Rand(), alloc.ExcludeSet(job))
	ncfg := noise.DefaultGeneratorConfig()
	ncfg.Pattern = noise.Hotspot
	ncfg.IntervalCycles = 6_000
	gen := noise.MustNewGenerator(fabric, other.Nodes(), ncfg)
	gen.Start(1 << 50)
	fmt.Printf("interfering job: %s (%s)\n\n", other, ncfg.Pattern)

	fmt.Printf("%-28s %12s %12s %10s %10s %14s\n",
		"routing", "median", "qcd(time)", "latency L", "stalls s", "non-minimal %")
	for _, mode := range []routing.Mode{routing.Adaptive, routing.IncreasinglyMinimalBias, routing.AdaptiveHighBias} {
		comm, err := mpi.NewComm(fabric, job, mpi.Config{
			Routing: func(int) mpi.RoutingProvider { return mpi.StaticRouting{Mode: mode} },
		})
		if err != nil {
			log.Fatal(err)
		}
		w := &workloads.Alltoall{MessageBytes: messageBytes, Iterations: 1}
		var times, lats, stalls []float64
		var nonMin float64
		for i := 0; i < iterations; i++ {
			before := jobCounters(fabric, job)
			start := engine.Now()
			if err := comm.Run(w.Run); err != nil {
				log.Fatal(err)
			}
			delta := jobCounters(fabric, job).Sub(before)
			times = append(times, float64(engine.Now()-start))
			lats = append(lats, delta.AvgPacketLatency())
			stalls = append(stalls, delta.StallRatio())
			nonMin = delta.NonMinimalFraction() * 100
		}
		fmt.Printf("%-28s %12.0f %12.3f %10.0f %10.2f %14.1f\n",
			mode.Name(), stats.Median(times), stats.QCD(times),
			stats.Median(lats), stats.Median(stalls), nonMin)
	}
	fmt.Println("\nNIC latency/stalls isolate the network's contribution; execution-time QCD alone")
	fmt.Println("mixes in host effects — the distinction §3.3 of the paper insists on.")
}
