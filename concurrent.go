package dragonfly

import (
	"fmt"

	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
	"dragonfly/internal/topo"
)

// JobRun pairs one job with the workload and options it runs under inside a
// RunConcurrent call. Each job brings its own routing configuration,
// iteration count, host noise and delivery capture; the jobs share the fabric
// and the simulated clock.
type JobRun struct {
	// Job is the allocated job; it must come from the System RunConcurrent is
	// called on and from the current epoch.
	Job *Job
	// Workload is the program every rank of the job executes per iteration.
	Workload Workload
	// Options configure the job's run exactly as they configure Job.Run.
	Options RunOptions
}

// jobRunState is the per-job bookkeeping of one RunConcurrent call: it tracks
// the iteration the job is on, the counter snapshots its deltas are computed
// from, and the job's partial Result. Iteration boundaries are private to the
// job — its snapshots are taken at the simulated times *its* iterations start
// and finish, which is what isolates per-job deltas when jobs finish at
// different times.
type jobRunState struct {
	sys     *System
	run     JobRun
	comm    *mpi.Comm
	routing Routing
	iters   int

	res              Result
	routers          map[topo.RouterID]bool
	flits0, stalled0 uint64
	before           Counters
	start            sim.Time
	iter             int
	err              error

	obsID  network.ObserverID
	hasObs bool
}

// startIteration snapshots the job's counters and launches one iteration of
// the workload on the shared scheduler.
func (st *jobRunState) startIteration(sched *mpi.Scheduler) {
	st.before = st.run.Job.Counters()
	st.start = st.sys.engine.Now()
	// Start cannot fail here: the scheduler only calls onFinished (which is
	// the only caller besides the initial launch) when every rank finished.
	if err := st.comm.Start(sched, st.run.Workload.Run); err != nil {
		st.err = err
	}
}

// finishIteration records one completed iteration; it runs on the scheduler
// goroutine at the simulated time the job's last rank finished. It returns
// true when the job should start another iteration.
func (st *jobRunState) finishIteration() bool {
	for r := 0; r < st.comm.Size(); r++ {
		if err := st.comm.Rank(r).Err(); err != nil {
			st.err = fmt.Errorf("dragonfly: rank %d: %w", r, err)
			return false
		}
	}
	elapsed := st.sys.engine.Now() - st.start
	delta := st.run.Job.Counters().Sub(st.before)
	st.res.TimeStats.Add(float64(elapsed))
	st.res.totalTime += elapsed
	if st.run.Options.StreamStats {
		// O(1) memory: the digest plus the aggregate counter total stand in
		// for the per-iteration slices.
		st.res.Counters.Add(delta)
	} else {
		st.res.Times = append(st.res.Times, elapsed)
		st.res.Deltas = append(st.res.Deltas, delta)
	}
	st.iter++
	if st.iter >= st.iters {
		st.complete()
		return false
	}
	if ctx := st.run.Options.Context; ctx != nil {
		if err := ctx.Err(); err != nil {
			st.err = fmt.Errorf("dragonfly: cancelled at iteration %d: %w", st.iter, err)
			return false
		}
	}
	return true
}

// complete closes out the job's measurement at its own completion time: the
// tile deltas cover exactly the window from the job's first iteration to its
// last, regardless of how long the other jobs keep running.
func (st *jobRunState) complete() {
	flits1, stalled1 := st.sys.fabric.IncomingFlits(st.routers)
	st.res.TileFlits, st.res.TileStalled = flits1-st.flits0, stalled1-st.stalled0
	// StreamStats runs fold deltas into Counters at every iteration; the
	// slice-backed path sums them here.
	for _, d := range st.res.Deltas {
		st.res.Counters.Add(d)
	}
	if st.routing.Stats != nil {
		st.res.SelectorStats = st.routing.Stats()
		st.res.HasSelectorStats = true
	}
}

// RunConcurrent executes N jobs concurrently on the shared fabric and returns
// one Result per job, in input order. Each job runs its own workload under
// its own routing configuration, iteration count and host noise; a
// cooperative scheduler interleaves the ranks of all jobs with the event
// engine deterministically, so two identically-built systems produce
// identical per-job Results. This is the paper's co-tenancy scenario with
// real applications on both sides: a victim job measured while actual
// workload-driven neighbors (not just synthetic noise generators) load the
// fabric.
//
// Per-job measurement windows are private: a job's iteration times, NIC
// counter deltas and router-tile deltas are snapshotted when *its* iterations
// start and finish, so they stay correctly isolated even when jobs finish at
// different simulated times. Jobs allocated through Allocate/AllocatePair are
// node-disjoint, which keeps the per-node NIC counters per-job exact; the
// tile deltas intentionally include traffic other jobs push through the
// job's routers — that contention is the observable the paper builds on.
//
// With RecordDeliveries set, a multi-job run captures only the deliveries
// touching that job's nodes; a single-job run captures every delivery on the
// fabric (including background noise), matching Job.Run — which is the
// single-job special case of this method.
//
// On error the returned slice still carries each job's partial Result. The
// per-job Options.Context values are checked before the first iteration,
// between iterations, and periodically while the simulation advances, so a
// cancelled long-running concurrent run aborts mid-iteration.
func (s *System) RunConcurrent(runs []JobRun) ([]Result, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("dragonfly: RunConcurrent needs at least one job")
	}
	multi := len(runs) > 1
	jobAt := func(i int) string {
		if multi {
			return fmt.Sprintf("job %d: ", i)
		}
		return ""
	}
	seen := make(map[*Job]bool, len(runs))
	for i, r := range runs {
		switch {
		case r.Job == nil:
			return nil, fmt.Errorf("dragonfly: %snil job", jobAt(i))
		case r.Job.sys != s:
			return nil, fmt.Errorf("dragonfly: %sjob belongs to a different system", jobAt(i))
		case r.Job.epoch != s.epoch:
			return nil, fmt.Errorf("dragonfly: %sjob is stale: it was allocated before System.Reset", jobAt(i))
		case r.Workload == nil:
			return nil, fmt.Errorf("dragonfly: %snil workload", jobAt(i))
		case seen[r.Job]:
			return nil, fmt.Errorf("dragonfly: job %d appears more than once", i)
		}
		seen[r.Job] = true
	}

	states := make([]*jobRunState, len(runs))
	for i, r := range runs {
		rc := r.Options.Routing
		if rc.Provider == nil {
			rc = DefaultRouting()
		}
		iters := r.Options.Iterations
		if iters < 1 {
			iters = 1
		}
		states[i] = &jobRunState{sys: s, run: r, routing: rc, iters: iters,
			res: Result{Setup: rc.Name, TimeStats: stats.NewDigest()}}
	}
	results := func() []Result {
		out := make([]Result, len(states))
		for i, st := range states {
			out[i] = st.res
		}
		return out
	}
	firstErr := func() error {
		for _, st := range states {
			if st.err != nil {
				return st.err
			}
		}
		return nil
	}

	// Cancellation check before the first iteration (and, through the
	// scheduler hook below, periodically during the run).
	checkAll := func() error {
		for _, st := range states {
			if ctx := st.run.Options.Context; ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := checkAll(); err != nil {
		return results(), fmt.Errorf("dragonfly: cancelled at iteration 0: %w", err)
	}

	sched := mpi.NewScheduler(s.engine)
	for _, st := range states {
		st := st
		comm, err := mpi.NewComm(s.fabric, st.run.Job.alloc, mpi.Config{
			Routing:   st.routing.Provider,
			Verb:      st.run.Options.Verb,
			HostNoise: st.run.Options.HostNoise,
		})
		if err != nil {
			return results(), err
		}
		st.comm = comm
		comm.OnFinished(func() {
			if st.finishIteration() {
				st.startIteration(sched)
			}
		})
		if st.run.Options.RecordDeliveries {
			var filter map[NodeID]bool
			if multi {
				filter = make(map[NodeID]bool, st.run.Job.Size())
				for _, n := range st.run.Job.Nodes() {
					filter[n] = true
				}
			}
			st.obsID = s.fabric.AddDeliveryObserver(func(d Delivery) {
				if filter != nil && !filter[d.Src] && !filter[d.Dst] {
					return
				}
				st.res.Deliveries = append(st.res.Deliveries, d)
			})
			st.hasObs = true
			defer s.fabric.RemoveDeliveryObserver(st.obsID)
		}
	}
	for _, st := range states {
		st.routers = st.run.Job.alloc.Routers()
		st.flits0, st.stalled0 = s.fabric.IncomingFlits(st.routers)
	}
	for _, st := range states {
		st.startIteration(sched)
	}
	if err := sched.Run(checkAll); err != nil {
		// Release the rank goroutines the abandoned run left parked; without
		// this every cancelled RunConcurrent leaks one goroutine per rank.
		sched.Shutdown()
		if err2 := checkAll(); err2 != nil && err == err2 {
			err = fmt.Errorf("dragonfly: cancelled mid-run: %w", err)
		}
		return results(), err
	}
	return results(), firstErr()
}
