package dragonfly_test

import (
	"fmt"
	"log"

	"dragonfly"
	"dragonfly/internal/workloads"
)

// Example stands up a small simulated system, runs a ping-pong between two
// groups under static high-bias routing and under the paper's
// application-aware selector, and reports what moved. This is the complete
// supported wiring — no internal packages needed.
func Example() {
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.SmallGeometry(4)),
		dragonfly.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	job, err := sys.AllocatePair(dragonfly.InterGroups)
	if err != nil {
		log.Fatal(err)
	}

	w := &workloads.PingPong{MessageBytes: 32 << 10, Iterations: 4}
	static, err := job.Run(w, dragonfly.RunOptions{
		Routing: dragonfly.StaticRouting(dragonfly.AdaptiveHighBias),
	})
	if err != nil {
		log.Fatal(err)
	}
	aware, err := job.Run(w, dragonfly.RunOptions{Routing: dragonfly.AppAware()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ranks: %d in %d groups\n", job.Size(), job.Allocation().NumGroups())
	fmt.Printf("static run finished: %v, moved packets: %v\n",
		static.Time() > 0, static.Counters.RequestPackets > 0)
	fmt.Printf("app-aware selector routed %v messages: %v\n",
		aware.SelectorStats.Messages > 0, aware.Setup)
	// Output:
	// ranks: 2 in 2 groups
	// static run finished: true, moved packets: true
	// app-aware selector routed true messages: AppAware
}
