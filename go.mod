module dragonfly

go 1.24
